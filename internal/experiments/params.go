package experiments

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/knngraph"
	"repro/internal/lsh"
	"repro/internal/vptree"
)

// Params is a set of named query-time parameters ("method params"): the
// knobs that trace a method's recall/efficiency curve without rebuilding the
// index. The textual form — "gamma=0.05", "att=2,ef=20" — is exactly the
// variant label the Figure 4 sweeps print, so a row of experiment output can
// be pasted verbatim into an annbench invocation or a serving request.
//
// Recognized keys per index kind:
//
//	brute-force-filt, brute-force-filt-bin, distvec-filt:  gamma
//	napp:       t (alias minshared)
//	vptree:     alpha (sets both pruning stretch factors),
//	            alphaleft, alpharight (one side each)
//	sw-graph, nndescent-graph:  att (alias attempts), ef
//	mplsh:      T (alias probes)
//
// All other kinds have no query-time knobs.
type Params map[string]float64

// ParseParams parses a comma-separated key=value list such as
// "gamma=0.05" or "att=2,ef=20". Keys are not validated here — only
// ApplyParams knows which keys an index kind accepts.
func ParseParams(s string) (Params, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Params{}, nil
	}
	out := Params{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(part, "=")
		k = strings.TrimSpace(k)
		if !ok || k == "" {
			return nil, fmt.Errorf("experiments: malformed param %q (want key=value)", part)
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return nil, fmt.Errorf("experiments: param %q: %v", part, err)
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("experiments: param %q given twice", k)
		}
		out[k] = val
	}
	return out, nil
}

// String renders the params back in ParseParams syntax, keys sorted.
func (p Params) String() string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%g", k, p[k])
	}
	return b.String()
}

// knob is one settable query-time parameter of a concrete index.
type knob struct {
	// groups names the underlying state the knob writes. Two keys of one
	// request whose groups intersect would apply (and restore) in
	// map-iteration order — i.e. nondeterministically — so ApplyParams
	// rejects them. Aliases share a group; vptree's composite "alpha"
	// spans both side groups.
	groups []string
	// integer marks knobs that truncate to int; non-integral values are
	// rejected rather than silently floored.
	integer bool
	// allowZero admits 0 (only mplsh probes); every knob rejects
	// negatives. The underlying setters ignore out-of-range values
	// silently, which is fine for internal sweeps but would make a
	// serving request report success while searching under the old
	// setting — so the range is enforced here, before any setter runs.
	allowZero bool
	// get returns the knob's current state keyed by canonical restore
	// params — possibly several (vptree "alpha" reports both sides), so
	// restoring prev is always exact.
	get func() Params
	set func(float64)
}

// knobsOf maps the canonical and alias keys of idx's kind to its knobs, or
// returns nil for kinds without query-time parameters.
func knobsOf[T any](idx index.Index[T]) map[string]knob {
	switch v := any(idx).(type) {
	case *core.BruteForceFilter[T]:
		return gammaKnob(v.Gamma, v.SetGamma)
	case *core.BinFilter[T]:
		return gammaKnob(v.Gamma, v.SetGamma)
	case *core.QuantFilter[T]:
		return gammaKnob(v.Gamma, v.SetGamma)
	case *core.DistVecFilter[T]:
		return gammaKnob(v.Gamma, v.SetGamma)
	case *core.NAPP[T]:
		k := knob{
			groups:  []string{"t"},
			integer: true,
			get:     func() Params { return Params{"t": float64(v.Options().MinShared)} },
			set:     func(x float64) { v.SetMinShared(int(x)) },
		}
		return map[string]knob{"t": k, "minshared": k}
	case *vptree.Tree[T]:
		left := knob{
			groups: []string{"alphaleft"},
			get:    func() Params { l, _ := v.Alpha(); return Params{"alphaleft": l} },
			set:    func(x float64) { v.SetAlpha(x, 0) },
		}
		right := knob{
			groups: []string{"alpharight"},
			get:    func() Params { _, r := v.Alpha(); return Params{"alpharight": r} },
			set:    func(x float64) { v.SetAlpha(0, x) },
		}
		both := knob{
			groups: []string{"alphaleft", "alpharight"},
			get: func() Params {
				l, r := v.Alpha()
				return Params{"alphaleft": l, "alpharight": r}
			},
			set: func(x float64) { v.SetAlpha(x, x) },
		}
		return map[string]knob{"alpha": both, "alphaleft": left, "alpharight": right}
	case *knngraph.Graph[T]:
		att := knob{
			groups:  []string{"att"},
			integer: true,
			get:     func() Params { a, _ := v.SearchParams(); return Params{"att": float64(a)} },
			set:     func(x float64) { v.SetSearchParams(int(x), 0) },
		}
		ef := knob{
			groups:  []string{"ef"},
			integer: true,
			get:     func() Params { _, e := v.SearchParams(); return Params{"ef": float64(e)} },
			set:     func(x float64) { v.SetSearchParams(0, int(x)) },
		}
		return map[string]knob{"att": att, "attempts": att, "ef": ef}
	case *lsh.MPLSH:
		k := knob{
			groups:    []string{"probes"},
			integer:   true,
			allowZero: true,
			get:       func() Params { return Params{"probes": float64(v.Probes())} },
			set:       func(x float64) { v.SetProbes(int(x)) },
		}
		return map[string]knob{"T": k, "probes": k}
	default:
		return nil
	}
}

// gammaKnob is the shared knob map of the three gamma-budgeted filters.
func gammaKnob(get func() float64, set func(float64)) map[string]knob {
	return map[string]knob{"gamma": {
		groups: []string{"gamma"},
		get:    func() Params { return Params{"gamma": get()} },
		set:    set,
	}}
}

// ApplyParams sets the query-time knobs named in p on idx and returns the
// knobs' previous values — keyed by canonical restore params, so passing
// prev back through ApplyParams restores the index exactly. A key the index
// kind does not recognize, an out-of-range or non-integral value, or two
// keys writing the same underlying knob (an alias pair, or "alpha" with one
// of its sides) all fail before anything is modified. Like the underlying
// setters, ApplyParams must not run concurrently with Search on the same
// index.
func ApplyParams[T any](idx index.Index[T], p Params) (prev Params, err error) {
	if len(p) == 0 {
		return Params{}, nil
	}
	knobs := knobsOf(idx)
	claimed := map[string]string{} // group -> request key that writes it
	for k, val := range p {
		kb, ok := knobs[k]
		if !ok {
			return nil, fmt.Errorf("experiments: index %q has no query-time param %q", idx.Name(), k)
		}
		for _, g := range kb.groups {
			if other, dup := claimed[g]; dup {
				return nil, fmt.Errorf("experiments: params %q and %q set the same knob", other, k)
			}
			claimed[g] = k
		}
		if val < 0 || (val == 0 && !kb.allowZero) {
			return nil, fmt.Errorf("experiments: param %s=%g out of range", k, val)
		}
		if kb.integer && val != math.Trunc(val) {
			return nil, fmt.Errorf("experiments: param %s=%g must be an integer", k, val)
		}
	}
	prev = make(Params, len(p))
	for k, val := range p {
		for rk, rv := range knobs[k].get() {
			prev[rk] = rv
		}
		knobs[k].set(val)
	}
	return prev, nil
}
