// Command tune reproduces the paper's parameter-tuning procedures (§3.2,
// §3.3): parameters are chosen on a subset of the data so that recall lands
// in the 0.85-0.95 band. Two tuners are exposed:
//
//	tune -what vptree -dataset wiki-8-kl -target 0.9   # pruning stretch alpha
//	tune -what napp   -dataset sift      -target 0.9   # minimum shared pivots t
//
// The result is printed as the flag setting to pass to the other tools.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	what := flag.String("what", "vptree", "which tuner: vptree or napp")
	ds := flag.String("dataset", "sift", "data set name")
	n := flag.Int("n", 2000, "tuning subset size")
	queries := flag.Int("queries", 100, "tuning queries")
	k := flag.Int("k", 10, "neighbors per query")
	target := flag.Float64("target", 0.9, "recall target")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := experiments.Config{N: *n, Queries: *queries, K: *k, Seed: *seed}
	res, err := experiments.Tune(*ds, *what, cfg, *target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tune: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dataset=%s method=%s %s (recall %.3f at target %.2f)\n",
		*ds, *what, res.Setting, res.Recall, *target)
}
