// Command permrouter is the scatter-gather front tier of the sharded
// serving stack: it fans every k-NN query out to a fleet of permserve
// shard processes and merges the per-shard top-k answers, speaking exactly
// the serving daemon's HTTP dialect — to a client, a router over S shards
// looks like one big permserve (see internal/router for the identity
// guarantees).
//
// Usage:
//
//	shardsplit -out idx/ -set dna -dataset dna -n 2000 -shards 2
//	permserve -dir idx/shard0 -addr 127.0.0.1:8081 &
//	permserve -dir idx/shard1 -addr 127.0.0.1:8082 &
//	permrouter -shards http://127.0.0.1:8081,http://127.0.0.1:8082 -addr :8080
//
//	curl localhost:8080/healthz            # ready only when every shard has a healthy replica
//	curl localhost:8080/statusz            # per-replica QPS/latency/error/hedge/ejection counters
//	curl localhost:8080/metrics            # Prometheus text: per-index, per-shard, per-replica families
//	curl localhost:8080/v1/indexes         # merged view (total n, per-replica generation matrix)
//	curl -d '{"query": "ACGTACGTAC", "k": 3}' localhost:8080/v1/indexes/dna/search
//
// Topology comes from exactly one of three flags. -shards lists one
// process per shard (backend i is shard i). -replicas adds replication:
// ';' separates shards, ',' separates the replicas within one —
// "http://a,http://b;http://c,http://d" is two shards of two replicas
// each, load-spread round-robin with automatic failover, so a single host
// loss inside a group is invisible (not a "partial" answer). -topology
// reads the same shards × replicas layout from a permsearch-topology/v1
// JSON file, the one cmd/permctl ships rollouts with. Startup refuses any
// wiring the shard stamps contradict.
//
// When a whole shard group is down, -fail-open answers from the survivors
// with "partial": true; the default fails closed with 502. -hedge-delay
// duplicates a laggard's request after the given delay — against a
// *different* replica when the group has one to spare. A replica failing
// -eject-after consecutive requests leaves the rotation until the
// background prober (every -probe-interval) sees its /healthz answer
// again.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/rollout"
	"repro/internal/router"
)

func main() {
	shards := flag.String("shards", "", "comma-separated shard base URLs, in shard order (one process per shard)")
	replicas := flag.String("replicas", "", "replicated topology: ';' between shards, ',' between a shard's replicas")
	topoPath := flag.String("topology", "", "permsearch-topology/v1 JSON file describing the fleet (see cmd/permctl)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port; the bound address is logged)")
	failOpen := flag.Bool("fail-open", false, "answer from surviving shards (with \"partial\": true) when a whole shard group is down, instead of 502")
	shardTimeout := flag.Duration("shard-timeout", 10*time.Second, "per-shard request budget")
	hedgeDelay := flag.Duration("hedge-delay", 0, "duplicate a shard request that has not answered within this delay (0: disabled)")
	ejectAfter := flag.Int("eject-after", 3, "consecutive failures before a replica leaves the rotation")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "how often ejected replicas are probed for re-admission")
	flag.Parse()

	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	topo, err := parseTopology(*shards, *replicas, *topoPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "permrouter: %v\n", err)
		os.Exit(2)
	}

	rt, err := router.New(router.Options{
		Replicas:      topo,
		FailOpen:      *failOpen,
		ShardTimeout:  *shardTimeout,
		HedgeDelay:    *hedgeDelay,
		EjectAfter:    *ejectAfter,
		ProbeInterval: *probeInterval,
		Metrics:       obs.Default(),
	})
	if err != nil {
		log.Fatalf("permrouter: %v", err)
	}
	defer rt.Close()
	mode := "fail-closed"
	if *failOpen {
		mode = "fail-open"
	}
	nReplicas := 0
	for _, g := range topo {
		nReplicas += len(g)
	}
	log.Printf("permrouter: routing %d indexes over %d shards / %d replicas (%s)",
		len(rt.Names()), len(topo), nReplicas, mode)
	for _, name := range rt.Names() {
		log.Printf("permrouter: routing index %q", name)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("permrouter: %v", err)
	}
	log.Printf("permrouter: listening on http://%s (%d shards)", ln.Addr(), len(topo))

	hs := &http.Server{Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Printf("permrouter: shutting down (in-flight requests get 10s to finish)")
		shctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			log.Fatalf("permrouter: shutdown: %v", err)
		}
		log.Printf("permrouter: bye")
	case err := <-errCh:
		log.Fatalf("permrouter: %v", err)
	}
}

// parseTopology resolves the three topology flags (exactly one must be set)
// into the shards × replicas URL matrix.
func parseTopology(shards, replicas, topoPath string) ([][]string, error) {
	set := 0
	for _, f := range []string{shards, replicas, topoPath} {
		if f != "" {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("exactly one of -shards, -replicas, -topology is required (e.g. -shards http://h1:8081,http://h2:8082)")
	}
	switch {
	case topoPath != "":
		t, err := rollout.ReadTopology(topoPath)
		if err != nil {
			return nil, err
		}
		return t.URLs(), nil
	case replicas != "":
		var topo [][]string
		for _, groupSpec := range strings.Split(replicas, ";") {
			var group []string
			for _, u := range strings.Split(groupSpec, ",") {
				if u = strings.TrimSpace(u); u != "" {
					group = append(group, u)
				}
			}
			if len(group) == 0 {
				return nil, fmt.Errorf("-replicas: empty shard group in %q", replicas)
			}
			topo = append(topo, group)
		}
		return topo, nil
	default:
		var topo [][]string
		for _, u := range strings.Split(shards, ",") {
			if u = strings.TrimSpace(u); u != "" {
				topo = append(topo, []string{u})
			}
		}
		return topo, nil
	}
}
