package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// End-to-end tests of the observability surface: GET /metrics exposes
// well-formed Prometheus text whose per-index counters, stage attribution
// and latency histograms are consistent with the requests actually served,
// and the slow-query log names the per-stage breakdown.

// scrapeMetrics fetches and strictly parses GET /metrics.
func scrapeMetrics(t *testing.T, ts *httptest.Server) *obs.TextMetrics {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content-type %q, want text/plain", ct)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := obs.ParseText(bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("parsing /metrics page: %v\npage:\n%s", err, blob)
	}
	return tm
}

// metricValue returns the value of the sample of family name whose labels
// include every pair in match.
func metricValue(t *testing.T, tm *obs.TextMetrics, name string, match map[string]string) float64 {
	t.Helper()
	v, ok := findMetric(tm, name, match)
	if !ok {
		t.Fatalf("no sample %s%v in /metrics", name, match)
	}
	return v
}

func findMetric(tm *obs.TextMetrics, name string, match map[string]string) (float64, bool) {
sampling:
	for _, s := range tm.Samples {
		if s.Name != name {
			continue
		}
		for k, want := range match {
			if s.Labels[k] != want {
				continue sampling
			}
		}
		return s.Value, true
	}
	return 0, false
}

// TestMetricsEndToEnd drives single and batch searches through the HTTP
// stack and checks the scraped families against the known request shape.
func TestMetricsEndToEnd(t *testing.T) {
	dir, dense, _ := buildFixtures(t)
	mreg := obs.NewRegistry()
	ts := bootServer(t, dir, Options{Workers: 4, Metrics: mreg})
	const k = 5
	name := "sift-napp"
	url := ts.URL + "/v1/indexes/" + name + "/search"

	if status, raw := postJSON(t, url, map[string]any{"query": dense.queries[0], "k": k}); status != http.StatusOK {
		t.Fatalf("single search: status %d: %s", status, raw)
	}
	batch := []any{dense.queries[1], dense.queries[2], dense.queries[3], dense.queries[4]}
	if status, raw := postJSON(t, url, map[string]any{"queries": batch, "k": k}); status != http.StatusOK {
		t.Fatalf("batch search: status %d: %s", status, raw)
	}
	// One request that fails (bad body) must count as request + failure but
	// contribute no queries or trace.
	if status, _ := postJSON(t, url, map[string]any{}); status != http.StatusBadRequest {
		t.Fatalf("bad search: status %d, want 400", status)
	}

	tm := scrapeMetrics(t, ts)
	idx := map[string]string{"index": name}
	if got := metricValue(t, tm, "permserve_search_requests_total", idx); got != 3 {
		t.Errorf("requests_total = %v, want 3", got)
	}
	if got := metricValue(t, tm, "permserve_search_failures_total", idx); got != 1 {
		t.Errorf("failures_total = %v, want 1", got)
	}
	if got := metricValue(t, tm, "permserve_queries_total", idx); got != 5 {
		t.Errorf("queries_total = %v, want 5 (1 single + 4 batch)", got)
	}
	// The latency histogram saw exactly the three requests; its quantiles
	// are positive and ordered.
	p50, count, ok := tm.Quantile("permserve_search_latency_seconds", idx, 0.5)
	if !ok || count != 3 {
		t.Fatalf("latency histogram: count = %d (ok=%v), want 3 observations", count, ok)
	}
	p99, _, _ := tm.Quantile("permserve_search_latency_seconds", idx, 0.99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("latency quantiles p50=%v p99=%v, want 0 < p50 <= p99", p50, p99)
	}
	// Stage attribution: every traced query contributed filter candidates
	// and refine evaluations (5 queries, each with at least one candidate),
	// and the filter/refine/merge stages accumulated time.
	if got := metricValue(t, tm, "permserve_filter_candidates_total", idx); got < 5 {
		t.Errorf("filter_candidates_total = %v, want >= 5", got)
	}
	refined := metricValue(t, tm, "permserve_refine_distances_total", idx)
	if refined < 5 {
		t.Errorf("refine_distances_total = %v, want >= 5", refined)
	}
	cands := metricValue(t, tm, "permserve_filter_candidates_total", idx)
	if refined > cands {
		t.Errorf("refine_distances_total %v exceeds filter_candidates_total %v: refine must only see filtered candidates", refined, cands)
	}
	for _, stage := range []string{"filter", "refine"} {
		if got := metricValue(t, tm, "permserve_stage_ns_total", map[string]string{"index": name, "stage": stage}); got <= 0 {
			t.Errorf("stage_ns_total{stage=%q} = %v, want > 0", stage, got)
		}
	}
	// The untouched fixture has traffic-free families too: present, zero.
	if got := metricValue(t, tm, "permserve_search_requests_total", map[string]string{"index": "dna-vptree"}); got != 0 {
		t.Errorf("idle index requests_total = %v, want 0", got)
	}
	// Process-level gauges are live.
	if got := metricValue(t, tm, "permserve_goroutines", nil); got <= 0 {
		t.Errorf("permserve_goroutines = %v, want > 0", got)
	}
}

// TestMetricsMutableTierAttribution checks that a search over a mutable
// entry (base + sealed tier + memtable) attributes time to the lsm_*
// stages.
func TestMetricsMutableTierAttribution(t *testing.T) {
	dir, _ := mutableFixtureDir(t)
	reg, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	mreg := obs.NewRegistry()
	ts := httptest.NewServer(New(reg, Options{Workers: 2, Metrics: mreg}).Handler())
	t.Cleanup(ts.Close)
	name := "sift-mut"

	// Shape the tree: one sealed tier, then a live memtable.
	obj := make([]float32, 128)
	obj[0] = 1
	mustAdd(t, ts, name, map[string]any{"object": obj})
	mustFlush(t, ts, name)
	obj[1] = 2
	mustAdd(t, ts, name, map[string]any{"object": obj})

	q := make([]float32, 128)
	if status, raw := postJSON(t, ts.URL+"/v1/indexes/"+name+"/search", map[string]any{"query": q, "k": 3}); status != http.StatusOK {
		t.Fatalf("search: status %d: %s", status, raw)
	}
	// A batch goes through the engine fan-out's per-worker traces.
	if status, raw := postJSON(t, ts.URL+"/v1/indexes/"+name+"/search", map[string]any{"queries": []any{q, q}, "k": 3}); status != http.StatusOK {
		t.Fatalf("batch search: status %d: %s", status, raw)
	}

	tm := scrapeMetrics(t, ts)
	for _, stage := range []string{"lsm_base", "lsm_tiers", "lsm_memtable"} {
		got := metricValue(t, tm, "permserve_stage_ns_total", map[string]string{"index": name, "stage": stage})
		if got <= 0 {
			t.Errorf("stage_ns_total{stage=%q} = %v, want > 0 with a sealed tier and live memtable", stage, got)
		}
	}
	if got := metricValue(t, tm, "permserve_refine_distances_total", map[string]string{"index": name}); got <= 0 {
		t.Errorf("refine_distances_total = %v, want > 0 (component searchers share the trace)", got)
	}
}

// TestSlowQueryLog checks the threshold + rate-limit contract: with a
// zero-ish threshold every request is slow (the counter sees each one),
// while the log emits a single JSON line naming the stage breakdown.
func TestSlowQueryLog(t *testing.T) {
	dir, dense, _ := buildFixtures(t)
	mreg := obs.NewRegistry()
	var buf bytes.Buffer
	lg := log.New(&buf, "", 0)
	ts := bootServer(t, dir, Options{
		Workers:            2,
		Metrics:            mreg,
		Log:                lg,
		SlowQueryThreshold: time.Nanosecond,
		SlowQueryEvery:     time.Hour, // admit exactly one line
	})
	name := "sift-napp"
	url := ts.URL + "/v1/indexes/" + name + "/search"
	for i := 0; i < 3; i++ {
		if status, raw := postJSON(t, url, map[string]any{"query": dense.queries[i], "k": 4}); status != http.StatusOK {
			t.Fatalf("search %d: status %d: %s", i, status, raw)
		}
	}

	tm := scrapeMetrics(t, ts)
	if got := metricValue(t, tm, "permserve_slow_queries_total", map[string]string{"index": name}); got != 3 {
		t.Errorf("slow_queries_total = %v, want 3 (every request crossed the threshold)", got)
	}
	lines := 0
	var line slowQueryLine
	for _, l := range strings.Split(buf.String(), "\n") {
		_, blob, found := strings.Cut(l, "slow_query ")
		if !found {
			continue
		}
		lines++
		if err := json.Unmarshal([]byte(blob), &line); err != nil {
			t.Fatalf("slow-query line is not JSON: %v\nline: %s", err, l)
		}
	}
	if lines != 1 {
		t.Fatalf("slow-query log emitted %d lines, want exactly 1 (rate limit)", lines)
	}
	if line.Index != name || line.Queries != 1 || line.K != 4 {
		t.Errorf("slow-query line = %+v, want index=%s queries=1 k=4", line, name)
	}
	if line.ElapsedUs <= 0 || line.FilterCandidates <= 0 || line.RefineDistances <= 0 {
		t.Errorf("slow-query line missing trace detail: %+v", line)
	}
	if line.StageUs["filter"] <= 0 || line.StageUs["refine"] <= 0 {
		t.Errorf("slow-query stage_us missing filter/refine: %v", line.StageUs)
	}
}
