package shard

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestIDsPartitionProperties: every id lands in exactly one shard, every
// shard is strictly increasing, and the assignment is stable across calls.
func TestIDsPartitionProperties(t *testing.T) {
	for _, p := range Partitioners() {
		for _, n := range []int{0, 1, 7, 300, 1024} {
			for _, s := range []int{1, 2, 3, 5, 8} {
				ids, err := IDs(p, n, s)
				if err != nil {
					t.Fatalf("%s n=%d s=%d: %v", p, n, s, err)
				}
				if len(ids) != s {
					t.Fatalf("%s n=%d s=%d: got %d shards", p, n, s, len(ids))
				}
				seen := make([]bool, n)
				for si, shardIDs := range ids {
					if !Sorted(shardIDs) {
						t.Errorf("%s n=%d s=%d: shard %d ids not strictly increasing", p, n, s, si)
					}
					for _, id := range shardIDs {
						if int(id) >= n {
							t.Fatalf("%s: id %d out of range n=%d", p, id, n)
						}
						if seen[id] {
							t.Errorf("%s n=%d s=%d: id %d in two shards", p, n, s, id)
						}
						seen[id] = true
						if got := p.Assign(id, s); got != si {
							t.Errorf("%s: Assign(%d, %d) = %d but IDs placed it in shard %d", p, id, s, got, si)
						}
					}
				}
				for id, ok := range seen {
					if !ok {
						t.Errorf("%s n=%d s=%d: id %d unassigned", p, n, s, id)
					}
				}
			}
		}
	}
}

// TestRoundRobinBalance: round-robin shard sizes differ by at most one.
func TestRoundRobinBalance(t *testing.T) {
	ids, err := IDs(RoundRobin, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids[0]) != 34 || len(ids[1]) != 33 || len(ids[2]) != 33 {
		t.Fatalf("sizes = %d,%d,%d", len(ids[0]), len(ids[1]), len(ids[2]))
	}
}

// TestHashAssignmentFixed pins the splitmix64 placement: these values are
// part of the on-disk contract (a Go upgrade or refactor that moves them
// would orphan every existing shard set).
func TestHashAssignmentFixed(t *testing.T) {
	want := map[uint32]int{0: 1, 1: 1, 2: 0, 3: 1, 4: 0, 100: 0, 9999: 1}
	for id, shard := range want {
		if got := Hash.Assign(id, 2); got != shard {
			t.Errorf("Hash.Assign(%d, 2) = %d, want %d", id, got, shard)
		}
	}
}

// TestShardIDsMatchesIDs: the single-shard accessor agrees with the full
// partition.
func TestShardIDsMatchesIDs(t *testing.T) {
	all, err := IDs(Hash, 257, 5)
	if err != nil {
		t.Fatal(err)
	}
	for s := range all {
		one, err := ShardIDs(Hash, 257, 5, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(one) != len(all[s]) {
			t.Fatalf("shard %d: %d ids vs %d", s, len(one), len(all[s]))
		}
		for i := range one {
			if one[i] != all[s][i] {
				t.Fatalf("shard %d id %d: %d vs %d", s, i, one[i], all[s][i])
			}
		}
	}
	if _, err := ShardIDs(Hash, 10, 2, 2); err == nil {
		t.Fatal("out-of-range shard index must error")
	}
}

// TestSubset gathers by id, preserving order.
func TestSubset(t *testing.T) {
	data := []string{"a", "b", "c", "d", "e"}
	got := Subset(data, []uint32{1, 3, 4})
	if len(got) != 3 || got[0] != "b" || got[1] != "d" || got[2] != "e" {
		t.Fatalf("Subset = %v", got)
	}
}

// TestInfoValidate covers the sidecar stamp's consistency checks.
func TestInfoValidate(t *testing.T) {
	ok := Info{Set: "x", Partitioner: Hash, Shards: 2, Index: 1}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Info{
		{Set: "x", Partitioner: "nope", Shards: 2, Index: 0},
		{Set: "x", Partitioner: Hash, Shards: 0, Index: 0},
		{Set: "x", Partitioner: Hash, Shards: 2, Index: 2},
		{Set: "x", Partitioner: Hash, Shards: 2, Index: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Info %+v validated", bad)
		}
	}
}

// writeFakeSet lays out a 2-shard fake set on disk — stand-in .psix blobs
// plus consistent serving sidecars — and returns its manifest.
func writeFakeSet(t *testing.T, dir string) *SetManifest {
	t.Helper()
	m := &SetManifest{
		Set: "demo", Kind: "vptree", Dataset: "dna", Seed: 42, N: 10,
		Partitioner: Hash, Generation: 3,
	}
	sizes := []int{6, 4}
	for i, contents := range []string{"shard-zero-bytes", "shard-one-bytes"} {
		sub := filepath.Join(dir, fmt.Sprintf("shard%d", i))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, "demo.psix"), []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
		sidecar := fmt.Sprintf(`{"dataset":"dna","seed":42,"n":10,"generation":3,`+
			`"shard":{"set":"demo","partitioner":"hash","shards":2,"index":%d}}`, i)
		if err := os.WriteFile(filepath.Join(sub, "demo.json"), []byte(sidecar), 0o644); err != nil {
			t.Fatal(err)
		}
		crc, err := FileChecksum(filepath.Join(sub, "demo.psix"))
		if err != nil {
			t.Fatal(err)
		}
		m.Shards = append(m.Shards, SetShard{
			Index: i, File: fmt.Sprintf("shard%d/demo.psix", i),
			Manifest: fmt.Sprintf("shard%d/demo.json", i), N: sizes[i], CRC32C: crc,
		})
	}
	return m
}

// TestSetManifestRoundtrip writes, re-reads and verifies a manifest.
func TestSetManifestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	m := writeFakeSet(t, dir)
	path, err := WriteSetManifest(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadSetManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Set != "demo" || back.Generation != 3 || len(back.Shards) != 2 || back.Partitioner != Hash {
		t.Fatalf("roundtrip = %+v", back)
	}
	if err := back.VerifyFiles(dir); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyFilesErrorPaths: the pre-flight must catch every way shipped
// bytes can lie — truncated or corrupted shard files, and sidecars from
// the wrong build (generation skew, wrong corpus, contradictory or missing
// shard stamps).
func TestVerifyFilesErrorPaths(t *testing.T) {
	for name, tc := range map[string]struct {
		sabotage func(t *testing.T, dir string)
		want     string // substring the error must carry
	}{
		"truncated shard file": {
			sabotage: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, "shard1", "demo.psix"), []byte("sh"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: "too short",
		},
		"corrupted shard file": {
			// The flipped byte sits in the checksummed region (the last 4
			// bytes are the trailer FileChecksum excludes).
			sabotage: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, "shard1", "demo.psix"), []byte("shard-0ne-bytes"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: "crc32c",
		},
		"missing shard file": {
			sabotage: func(t *testing.T, dir string) {
				if err := os.Remove(filepath.Join(dir, "shard0", "demo.psix")); err != nil {
					t.Fatal(err)
				}
			},
			want: "no such file",
		},
		"generation skew": {
			sabotage: func(t *testing.T, dir string) {
				stale := `{"dataset":"dna","seed":42,"n":10,"generation":2,` +
					`"shard":{"set":"demo","partitioner":"hash","shards":2,"index":0}}`
				if err := os.WriteFile(filepath.Join(dir, "shard0", "demo.json"), []byte(stale), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: "generation skew",
		},
		"wrong corpus": {
			sabotage: func(t *testing.T, dir string) {
				wrong := `{"dataset":"dna","seed":99,"n":10,"generation":3,` +
					`"shard":{"set":"demo","partitioner":"hash","shards":2,"index":0}}`
				if err := os.WriteFile(filepath.Join(dir, "shard0", "demo.json"), []byte(wrong), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: "seed",
		},
		"contradictory stamp": {
			sabotage: func(t *testing.T, dir string) {
				swapped := `{"dataset":"dna","seed":42,"n":10,"generation":3,` +
					`"shard":{"set":"demo","partitioner":"hash","shards":2,"index":1}}`
				if err := os.WriteFile(filepath.Join(dir, "shard0", "demo.json"), []byte(swapped), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			want: "stamp",
		},
		"missing sidecar": {
			sabotage: func(t *testing.T, dir string) {
				if err := os.Remove(filepath.Join(dir, "shard1", "demo.json")); err != nil {
					t.Fatal(err)
				}
			},
			want: "no such file",
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			m := writeFakeSet(t, dir)
			if err := m.VerifyFiles(dir); err != nil {
				t.Fatalf("pristine set failed verification: %v", err)
			}
			tc.sabotage(t, dir)
			err := m.VerifyFiles(dir)
			if err == nil {
				t.Fatal("VerifyFiles accepted the sabotaged set")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the cause (want substring %q)", err, tc.want)
			}
		})
	}
}

// TestSetManifestValidation rejects inconsistent manifests.
func TestSetManifestValidation(t *testing.T) {
	base := func() *SetManifest {
		return &SetManifest{
			Set: "s", Kind: "k", Dataset: "dna", N: 5, Partitioner: Hash,
			Shards: []SetShard{
				{Index: 0, File: "a", Manifest: "a.json", N: 3},
				{Index: 1, File: "b", Manifest: "b.json", N: 2},
			},
		}
	}
	if _, err := WriteSetManifest(t.TempDir(), base()); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	for name, mutate := range map[string]func(*SetManifest){
		"bad-partitioner": func(m *SetManifest) { m.Partitioner = "mod" },
		"size-mismatch":   func(m *SetManifest) { m.Shards[1].N = 9 },
		"index-gap":       func(m *SetManifest) { m.Shards[1].Index = 5 },
		"no-shards":       func(m *SetManifest) { m.Shards = nil },
		"empty-set":       func(m *SetManifest) { m.Set = "" },
	} {
		m := base()
		mutate(m)
		if _, err := WriteSetManifest(t.TempDir(), m); err == nil {
			t.Errorf("%s: invalid manifest accepted", name)
		}
	}
}
