package vecmath

// Saturated integer kernels for the permutation filtering stage and the
// 4-bit quantized signature scan. The paper's C++ implementation leans on
// SSE for these inner loops; the Go equivalents here are hand-unrolled
// (rank kernels) or SWAR over 64-bit words via math/bits-style bit tricks
// (nibble kernels), which is as close to "use the whole register" as the
// gc toolchain allows without assembly.
//
// Dispatch policy: each public kernel switches between a simple scalar loop
// and its unrolled twin on a width threshold. The thresholds are constants
// chosen from BenchmarkRankKernels / BenchmarkNibbleL1 (kernels_bench_test.go)
// on amd64: below them the unrolled prologue/epilogue costs more than it
// saves. Every kernel is byte-identical to its *Ref reference scalar —
// integer arithmetic is exact and reordering-safe, and the float32 L2 path
// keeps a single accumulator so its operation order matches the reference —
// which kernels_test.go pins across widths 0..129 (all tail-lane cases).

// Dispatch thresholds, measured per width with BenchmarkRankKernels (amd64,
// widths 4..256): the gc compiler already emits branch-free scalar code for
// both rank kernels, so the 4-way accumulator split only pays once the loop
// is long enough for instruction-level parallelism to beat the extra
// register pressure. For rho (sub+mul+add per lane) that crossover is at
// width 128 (~6% there, ~15% at 256); for footrule (sub+cmov+add per lane)
// the scalar loop wins at every tested width and unroll shape (1/2/4
// accumulators, int32 and int64 lanes), so its unrolled twin is disabled —
// kept, byte-identity-tested, for re-tuning on other targets.
const (
	rhoUnrollMin      = 128
	footruleUnrollMin = 1 << 30 // scalar wins everywhere measured
)

// SpearmanRho returns the sum of squared element differences between two
// equal-length int32 rank vectors — Spearman's rho in the paper's §2.1,
// exact in int64. It panics if the lengths differ.
func SpearmanRho(a, b []int32) int64 {
	if len(a) != len(b) {
		panic("vecmath: length mismatch")
	}
	if len(a) < rhoUnrollMin {
		return SpearmanRhoRef(a, b)
	}
	var s0, s1, s2, s3 int64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := int64(a[i]) - int64(b[i])
		d1 := int64(a[i+1]) - int64(b[i+1])
		d2 := int64(a[i+2]) - int64(b[i+2])
		d3 := int64(a[i+3]) - int64(b[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := int64(a[i]) - int64(b[i])
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// SpearmanRhoRef is the reference scalar implementation of SpearmanRho,
// the byte-identity baseline of the differential kernel tests. Both slices
// must have the same length.
func SpearmanRhoRef(a, b []int32) int64 {
	var s int64
	for i := range a {
		d := int64(a[i]) - int64(b[i])
		s += d * d
	}
	return s
}

// Footrule returns the sum of absolute element differences between two
// equal-length int32 rank vectors — the Footrule distance, exact in int64.
// The per-lane absolute value compiles to a conditional move, so the loop
// has no data-dependent branches. It panics if the lengths differ.
func Footrule(a, b []int32) int64 {
	if len(a) != len(b) {
		panic("vecmath: length mismatch")
	}
	if len(a) < footruleUnrollMin {
		return FootruleRef(a, b)
	}
	var s0, s1, s2, s3 int64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := int64(a[i]) - int64(b[i])
		d1 := int64(a[i+1]) - int64(b[i+1])
		d2 := int64(a[i+2]) - int64(b[i+2])
		d3 := int64(a[i+3]) - int64(b[i+3])
		if d0 < 0 {
			d0 = -d0
		}
		if d1 < 0 {
			d1 = -d1
		}
		if d2 < 0 {
			d2 = -d2
		}
		if d3 < 0 {
			d3 = -d3
		}
		s0 += d0
		s1 += d1
		s2 += d2
		s3 += d3
	}
	for ; i < len(a); i++ {
		d := int64(a[i]) - int64(b[i])
		if d < 0 {
			d = -d
		}
		s0 += d
	}
	return s0 + s1 + s2 + s3
}

// FootruleRef is the reference scalar implementation of Footrule.
// Both slices must have the same length.
func FootruleRef(a, b []int32) int64 {
	var s int64
	for i := range a {
		d := int64(a[i]) - int64(b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

// SWAR lane constants for the nibble kernels: each 64-bit word holds 16
// 4-bit lanes, split for the absolute-difference step into the even and odd
// nibble byte planes.
const (
	nibbleLo = 0x0F0F0F0F0F0F0F0F // low nibble of every byte
	byteLo   = 0x0101010101010101 // low bit of every byte
	byteHi   = 0x8080808080808080 // high bit of every byte
)

// NibbleL1Word returns the L1 distance between the 16 4-bit lanes of x and
// y: sum over lanes of |x_i - y_i|. It is the word kernel of the quantized
// permutation-prefix scan and is written as a small branch-free leaf so the
// compiler inlines it into flat scan loops.
//
// Technique: the word is split into its even- and odd-nibble byte planes
// (values 0..15 in byte lanes). Per plane, forcing the high bit of every x
// byte makes the lane-wise subtraction borrow-free, the surviving high bit
// is the x>=y lane mask, and a mask-select combines the two subtraction
// directions into |x-y|. The horizontal byte sum is one multiply by the
// byte ladder: per-word lane sums reach at most 16*15 = 240 < 256, so the
// top byte of the product is exact.
func NibbleL1Word(x, y uint64) int {
	xe, ye := x&nibbleLo, y&nibbleLo
	xo, yo := (x>>4)&nibbleLo, (y>>4)&nibbleLo
	te := (xe | byteHi) - ye
	to := (xo | byteHi) - yo
	me := ((te & byteHi) >> 7) * 0xFF // 0xFF in lanes where xe >= ye
	mo := ((to & byteHi) >> 7) * 0xFF
	ae := ((te &^ byteHi) & me) | (((ye|byteHi)-xe)&^byteHi)&^me
	ao := ((to &^ byteHi) & mo) | (((yo|byteHi)-xo)&^byteHi)&^mo
	return int(((ae + ao) * byteLo) >> 56)
}

// NibbleL1 returns the L1 distance between two equal-length nibble-packed
// words slices (16 4-bit lanes per word): the Footrule distance between two
// quantized permutation prefixes. Unused tail lanes must hold equal values
// on both sides (the packers zero them). It panics if the lengths differ.
func NibbleL1(a, b []uint64) int {
	if len(a) != len(b) {
		panic("vecmath: length mismatch")
	}
	var s int
	for i := range a {
		s += NibbleL1Word(a[i], b[i])
	}
	return s
}

// NibbleL1Ref is the reference scalar implementation of NibbleL1: it
// unpacks every 4-bit lane and accumulates plain integer absolute
// differences. Both slices must have the same length.
func NibbleL1Ref(a, b []uint64) int {
	var s int
	for i := range a {
		for sh := 0; sh < 64; sh += 4 {
			x := int(a[i]>>sh) & 0xF
			y := int(b[i]>>sh) & 0xF
			if x >= y {
				s += x - y
			} else {
				s += y - x
			}
		}
	}
	return s
}

// l2F32UnrollMin is the vector width from which the unrolled float32 L2
// kernel beats its scalar loop.
const l2F32UnrollMin = 8

// L2SqrF32 returns the squared Euclidean distance between a and b with the
// element difference computed in float32 — one rounding per element instead
// of the two float64 conversions L2Sqr pays — and the squares accumulated
// exactly in float64 (a 24-bit product is exact in a 53-bit mantissa).
//
// Precision: relative to L2Sqr, each term carries at most one extra float32
// rounding of the difference (relative error <= 2^-24 per element), so the
// total relative error is bounded by ~n*2^-23 — negligible for descriptor
// data but not bit-identical to L2Sqr. It is therefore an opt-in fast path
// (space.L2F32): the default space.L2 keeps L2Sqr so persisted indexes,
// recall goldens and sharded-identity properties stay byte-stable.
//
// The kernel keeps a single accumulator so its operation order — and hence
// its rounding — is byte-identical to L2SqrF32Ref at every width.
// It panics if the slices have different lengths.
func L2SqrF32(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vecmath: length mismatch")
	}
	if len(a) < l2F32UnrollMin {
		return L2SqrF32Ref(a, b)
	}
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s += float64(d0) * float64(d0)
		s += float64(d1) * float64(d1)
		s += float64(d2) * float64(d2)
		s += float64(d3) * float64(d3)
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += float64(d) * float64(d)
	}
	return s
}

// L2SqrF32Ref is the reference scalar implementation of L2SqrF32.
// Both slices must have the same length.
func L2SqrF32Ref(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += float64(d) * float64(d)
	}
	return s
}
