// Package lsm makes a served index mutable: a small always-mutable memtable
// index absorbs writes in front of a stack of immutable sealed tiers, in the
// LSM style (a small in-memory buffer sealed into geometrically-accumulating
// read-only tiers, merged down by background compaction).
//
// §3.5 of the paper argues permutation inverted files are database-friendly
// because "deletion and addition of records can be easily implemented"; this
// package is that claim made operational for the serving stack. Every write
// is appended to a write-ahead log and fsynced before it is acknowledged, so
// ingest survives kill -9; when the memtable overflows it is sealed into an
// immutable tier — a codec segment holding the raw objects plus an ordinary
// .psix index file — and queries scatter-gather across base + tiers +
// memtable, merging with the same canonical (dist, id) rule that makes
// sharded answers byte-identical to unsharded ones (internal/router). With
// exact per-component search, a tiered tree answers byte-identically to a
// single flat index over the same live set.
//
// # Id space and masking
//
// The base corpus owns ids [0, BaseN); added objects are assigned BaseN,
// BaseN+1, ... monotonically, and ids are never reused (the next id to
// assign is persisted in the manifest, so even a fully-deleted-and-compacted
// tree never re-issues an id). Because ids only grow, a tombstone recorded
// in a tier can only target the base corpus or an older tier — "newer tiers
// mask older ones" reduces to membership in the union of all tombstone
// sets, which Search applies after merging (components are queried with k
// inflated by the tombstone count so masking can never starve the result).
package lsm

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/scratch"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/topk"
	"repro/internal/vfs"
)

// Dynamic is the mutable-index contract the memtable builds on: incremental
// Add returning consecutive local ids (0, 1, 2, ...), tombstoning Delete,
// and searches that skip tombstoned points. *seqscan.Scanner (the default
// memtable, exact and buildable from empty for any space) and *core.NAPP
// (napp_dynamic.go, for memtables seeded with data) both satisfy it.
type Dynamic[T any] interface {
	index.Index[T]
	Add(x T) uint32
	Delete(id uint32) error
	Deleted(id uint32) bool
	Live() int
	Compact()
}

var (
	_ Dynamic[[]float32] = (*seqscan.Scanner[[]float32])(nil)
	_ Dynamic[[]float32] = (*core.NAPP[[]float32])(nil)
)

// ErrInvalid marks write failures caused by the request itself — an
// undecodable payload, an unknown or already-deleted id — as opposed to
// storage failures. A serving layer answers these 4xx, not 5xx.
var ErrInvalid = errors.New("invalid write")

// ErrPoisoned marks writes rejected because an earlier WAL write or fsync
// failed. A failed fsync must never be retried — the kernel may already
// have dropped the dirty pages, so a later "successful" sync would
// acknowledge a write that is not on disk (the fsyncgate lesson) — and a
// failed append may have left a torn record mid-log that would silently
// swallow every record appended after it on replay. The only safe move is
// fail-stop: the WAL is poisoned, every subsequent write returns this
// error (HTTP 503), searches keep serving, and re-opening the tree runs
// the normal recovery path over what actually reached disk.
var ErrPoisoned = errors.New("lsm: WAL poisoned by an earlier I/O failure; writes disabled until re-open")

// ErrReadOnly marks writes rejected because a seal or compaction hit a
// storage failure (ENOSPC, a failed rename). The WAL itself is intact and
// every acknowledged write is durable, but the tree cannot safely make new
// tiers, so it degrades to read-only (writes HTTP 507, searches keep
// serving) until it is re-opened — the orphaned files of the failed seal
// are debris the manifest never named, removed on the next recovery.
var ErrReadOnly = errors.New("lsm: tree is read-only after a storage failure; writes disabled until re-open")

// Options configures Open.
type Options[T any] struct {
	// Dir is the tree's private directory (WAL segments, sealed tiers,
	// manifest). Created if absent.
	Dir string
	// Space is the distance space shared with the base index.
	Space space.Space[T]
	// BaseN is the size of the immutable base corpus; added objects are
	// assigned ids starting at BaseN. A tree re-opened over a different
	// BaseN is rejected.
	BaseN int
	// Decode turns the raw wire payload of an added object back into the
	// object. Raw payloads — not decoded objects — are what the WAL and
	// tier segments store, so the same bytes the client sent are re-decoded
	// on every recovery, keeping replay exactly as deterministic as the
	// original ingest.
	Decode func(raw []byte) (T, error)
	// MemtableCap seals the memtable into a tier when its live size
	// reaches this many objects. Default 1024.
	MemtableCap int
	// MaxTiers triggers background compaction when the sealed-tier count
	// exceeds it. Default 4.
	MaxTiers int
	// Build constructs the immutable index of a sealed tier over its live
	// objects. Default: exact sequential scan (correct for every space;
	// tiers are small next to the base corpus).
	Build func(sp space.Space[T], data []T) (index.Index[T], error)
	// NewMemtable constructs the mutable memtable index. Default: an empty
	// exact sequential scanner.
	NewMemtable func(sp space.Space[T]) (Dynamic[T], error)
	// NoFsync disables the fsync-per-acknowledgement durability barrier.
	// Tests use it for speed; a production tree must keep it false or a
	// crash can lose acknowledged writes.
	NoFsync bool
	// FS is the filesystem every file operation goes through. Default:
	// the real OS filesystem (vfs.OS). Fault tests substitute a
	// faultfs.FS to fail chosen fsyncs, writes and renames.
	FS vfs.FS
}

func (o *Options[T]) defaults() error {
	if o.Dir == "" {
		return fmt.Errorf("lsm: Options.Dir is required")
	}
	if o.Space == nil {
		return fmt.Errorf("lsm: Options.Space is required")
	}
	if o.Decode == nil {
		return fmt.Errorf("lsm: Options.Decode is required")
	}
	if o.BaseN < 0 {
		return fmt.Errorf("lsm: negative BaseN %d", o.BaseN)
	}
	if o.MemtableCap <= 0 {
		o.MemtableCap = 1024
	}
	if o.MaxTiers <= 0 {
		o.MaxTiers = 4
	}
	if o.Build == nil {
		o.Build = func(sp space.Space[T], data []T) (index.Index[T], error) {
			return seqscan.New(sp, data), nil
		}
	}
	if o.NewMemtable == nil {
		o.NewMemtable = func(sp space.Space[T]) (Dynamic[T], error) {
			return seqscan.New[T](sp, nil), nil
		}
	}
	if o.FS == nil {
		o.FS = vfs.OS{}
	}
	return nil
}

// memtable pairs the mutable index with the global ids and raw payloads of
// its entries. Local id i (the Dynamic index's id) is global id ids[i].
type memtable[T any] struct {
	dyn   Dynamic[T]
	ids   []uint32 // ascending global ids, parallel to the dyn's local ids
	blobs [][]byte
	objs  []T
}

func (m *memtable[T]) add(gid uint32, obj T, blob []byte) error {
	local := m.dyn.Add(obj)
	if int(local) != len(m.ids) {
		return fmt.Errorf("lsm: memtable index assigned local id %d, want %d (Dynamic ids must be consecutive)", local, len(m.ids))
	}
	m.ids = append(m.ids, gid)
	m.blobs = append(m.blobs, blob)
	m.objs = append(m.objs, obj)
	return nil
}

// find returns the local id of a global id, if present.
func (m *memtable[T]) find(gid uint32) (uint32, bool) {
	i, ok := slices.BinarySearch(m.ids, gid)
	return uint32(i), ok
}

// Tree is a mutable tiered index: base corpus (owned by the caller), sealed
// immutable tiers, and a mutable memtable, all sharing one global id space.
// All methods are safe for concurrent use; writes take the write lock, so
// they serialize against searches (the memtable guard).
type Tree[T any] struct {
	opts Options[T]
	fs   vfs.FS

	mu       sync.RWMutex
	mem      *memtable[T]
	tiers    []*tier[T] // ascending seal order (ascending seq)
	deleted  map[uint32]struct{}
	segTombs []uint32 // non-memtable ids deleted during the current WAL segment
	nextID   uint32
	wal      *wal
	walSeq   uint64
	tierSeq  uint64 // next tier sequence number to assign
	closed   bool

	// Fail-stop state. poisoned and readOnly are sticky until re-open:
	// once a WAL write/fsync fails (poisoned) or a seal/compaction hits a
	// storage error (readOnly), every subsequent write is rejected with
	// the matching sentinel while searches keep serving. lastIOErr is the
	// most recent storage failure, for /statusz. quarantined lists the
	// corrupt tier files recovery renamed aside, one "<file>: <cause>"
	// entry each.
	poisoned    error
	readOnly    error
	lastIOErr   error
	quarantined []string

	compacting bool
	compactErr error
	wg         sync.WaitGroup

	// searchEpoch versions the search-visible component set (sealed tier
	// list and memtable identity). Bumped under the write lock at every
	// structural change; pooled search states compare it under the read
	// lock and re-mint their per-component searchers only when it moved,
	// like NAPP's mutation-sequence re-snapshot.
	searchEpoch uint64
	searchPool  scratch.Pool[searchState[T]]
}

// searchState is the pooled per-query state of one tiered search: cached
// per-component zero-alloc searchers plus the merge buffer. The cached
// searchers are valid for the epoch they were minted under; base searchers
// are re-minted whenever the caller passes a different base index (compared
// by interface identity, so base indexes must be pointer-shaped — every
// index in this repository is).
// Alongside each searcher the state caches its obs.Traceable view (nil when
// the component cannot carry a trace), so the traced search path does the
// interface assertion once per mint instead of once per query.
type searchState[T any] struct {
	epoch uint64
	base  index.Index[T]
	baseS index.Searcher[T]
	baseT obs.Traceable
	tierS []index.Searcher[T] // parallel to Tree.tiers; nil for index-less tiers
	tierT []obs.Traceable
	memS  index.Searcher[T]
	memT  obs.Traceable
	buf   []topk.Neighbor
}

// mintSearcher returns a per-worker searcher for idx: its own when the
// index provides one, otherwise a wrapper over the allocating Search (the
// merge loop stays uniform; only that component's allocations remain).
func mintSearcher[T any](idx index.Index[T]) index.Searcher[T] {
	if sp, ok := idx.(index.SearcherProvider[T]); ok {
		return sp.NewSearcher()
	}
	return fallbackSearcher[T]{idx}
}

type fallbackSearcher[T any] struct{ idx index.Index[T] }

func (f fallbackSearcher[T]) Search(query T, k int) []topk.Neighbor {
	return f.idx.Search(query, k)
}

func (f fallbackSearcher[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	return append(dst, f.idx.Search(query, k)...)
}

// Open loads (or initializes) a tree in opts.Dir: manifest, sealed tiers,
// then WAL replay into a fresh memtable. Files the manifest does not name
// are crash debris and are removed. A tier whose bytes fail validation
// (checksum, shape, decode) is quarantined — dropped from the manifest and
// renamed aside — so one corrupt file does not take down the whole tree; a
// tier whose bytes cannot be *read* (EIO) aborts Open cleanly instead,
// because discarding a possibly-intact file on a transient read failure
// would turn one flaky disk read into permanent data loss.
func Open[T any](opts Options[T]) (*Tree[T], error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	fsys := opts.FS
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	man, ok, err := readManifest(fsys, opts.Dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		man = &manifest{
			Version: manifestVersion,
			Space:   opts.Space.Name(),
			BaseN:   opts.BaseN,
			NextID:  uint32(opts.BaseN),
			WalSeq:  1, NextTierSeq: 1,
		}
		if err := writeManifest(fsys, opts.Dir, man); err != nil {
			return nil, err
		}
	}
	if man.Space != opts.Space.Name() {
		return nil, fmt.Errorf("lsm: %s: tree was created under space %q, Open supplies %q", opts.Dir, man.Space, opts.Space.Name())
	}
	if man.BaseN != opts.BaseN {
		return nil, fmt.Errorf("lsm: %s: tree was created over a base corpus of %d points, Open supplies %d", opts.Dir, man.BaseN, opts.BaseN)
	}

	t := &Tree[T]{
		opts:    opts,
		fs:      fsys,
		deleted: make(map[uint32]struct{}),
		nextID:  man.NextID,
		walSeq:  man.WalSeq,
		tierSeq: man.NextTierSeq,
	}
	var quarantine []manifestTier
	var keptTiers []manifestTier
	for _, mt := range man.Tiers {
		tr, err := readSegment(fsys, opts.Dir, opts.Space.Name(), mt.Seq, opts.Decode)
		if err == nil && (len(tr.ids) != mt.N || len(tr.tombs) != mt.Tombstones) {
			err = fmt.Errorf("lsm: tier %d holds %d objects / %d tombstones, manifest says %d / %d: %w",
				mt.Seq, len(tr.ids), len(tr.tombs), mt.N, mt.Tombstones, errSegCorrupt)
		}
		if err != nil {
			if !isCorrupt(err) {
				return nil, err
			}
			quarantine = append(quarantine, mt)
			t.quarantined = append(t.quarantined,
				fmt.Sprintf("%06d.seg%s: %v", mt.Seq, quarantineExt, err))
			continue
		}
		if len(tr.ids) > 0 {
			// The .psix is derived state: prefer loading it, rebuild from
			// the segment when missing or unreadable.
			idx, err := persist.LoadFileFS(fsys, idxPath(opts.Dir, mt.Seq), opts.Space, tr.objs)
			if err != nil {
				idx, err = opts.Build(opts.Space, tr.objs)
				if err != nil {
					return nil, fmt.Errorf("lsm: rebuilding tier %d index: %w", mt.Seq, err)
				}
				// Best effort: the rebuilt index serves fine from memory
				// even if re-persisting it fails.
				_ = persist.SaveFileFS(fsys, idxPath(opts.Dir, mt.Seq), idx)
			}
			if mt.Kind != "" && idx.Name() != mt.Kind {
				return nil, fmt.Errorf("lsm: tier %d index is %q, manifest says %q", mt.Seq, idx.Name(), mt.Kind)
			}
			tr.idx = idx
		}
		t.tiers = append(t.tiers, tr)
		keptTiers = append(keptTiers, mt)
		for _, id := range tr.tombs {
			t.deleted[id] = struct{}{}
		}
	}
	if len(quarantine) > 0 {
		// Commit the surviving tier list first, then move the corrupt files
		// aside: if we crash in between, the next recovery sees a manifest
		// that no longer names them and treats them as removable debris —
		// either way the tree converges without ever re-reading bad bytes.
		man.Tiers = keptTiers
		if err := writeManifest(fsys, opts.Dir, man); err != nil {
			return nil, fmt.Errorf("lsm: committing manifest after quarantining %d tiers: %w", len(quarantine), err)
		}
		for _, mt := range quarantine {
			quarantineTier(fsys, opts.Dir, mt.Seq)
		}
	}
	removeStale(fsys, opts.Dir, man)

	dyn, err := opts.NewMemtable(opts.Space)
	if err != nil {
		return nil, err
	}
	t.mem = &memtable[T]{dyn: dyn}
	w, recs, err := openWAL(fsys, walPath(opts.Dir, man.WalSeq), opts.NoFsync)
	if err != nil {
		return nil, err
	}
	t.wal = w
	walStartID := t.nextID // manifest NextID: the id floor at this WAL's start
	var kept []walRecord
	dropped := 0
	for _, rec := range recs {
		keep, err := t.replay(rec)
		if err != nil {
			w.close()
			return nil, fmt.Errorf("lsm: replaying %s: %w", w.path, err)
		}
		if keep {
			kept = append(kept, rec)
		} else {
			dropped++
		}
	}
	if dropped > 0 {
		// Spent tombstones must not outlive this recovery: the next Open
		// would hit them again (and again), and the "its tier was just
		// quarantined" context that explains them is gone by then. Rotating
		// them out now makes recovery convergent — each Open strictly
		// shrinks the set of anomalies instead of preserving it.
		if err := t.rewriteWAL(kept, walStartID); err != nil {
			t.wal.close()
			return nil, fmt.Errorf("lsm: dropping %d spent WAL tombstones: %w", dropped, err)
		}
	}
	return t, nil
}

// replay applies one recovered WAL record to the in-memory state, exactly
// as the original applyAdd/applyDelete did. It reports whether the record
// is still load-bearing: a delete whose target is already gone — its tier
// was quarantined this recovery, or a crash landed between a quarantining
// manifest commit and the WAL rewrite that follows it — is a spent
// tombstone. The object is equally dead either way, so the record is
// dropped (keep=false) rather than failing recovery over it. Tolerance
// cannot mask a real inconsistency here: every manifest-named tier either
// loaded or aborted/quarantined before replay runs, so a failing delete
// genuinely has no live target.
func (t *Tree[T]) replay(rec walRecord) (keep bool, err error) {
	switch rec.op {
	case walOpAdd:
		if rec.id < t.nextID || rec.id < uint32(t.opts.BaseN) {
			return false, fmt.Errorf("add record reuses id %d (next id %d)", rec.id, t.nextID)
		}
		obj, err := t.opts.Decode(rec.payload)
		if err != nil {
			return false, fmt.Errorf("decoding add record id %d: %w", rec.id, err)
		}
		if err := t.mem.add(rec.id, obj, rec.payload); err != nil {
			return false, err
		}
		t.nextID = rec.id + 1
	case walOpDelete:
		if err := t.applyDelete(rec.id); err != nil {
			return false, nil
		}
	default:
		return false, fmt.Errorf("unknown record op %d", rec.op)
	}
	return true, nil
}

// rewriteWAL rotates the just-replayed WAL segment to shed records replay
// dropped: the surviving records are written to a fresh segment, the
// manifest commits the new sequence, and only then is the old segment
// removed. A crash at any boundary leaves exactly one manifest-named,
// fully-intact segment — the old one (with its spent tombstones, dropped
// again next time) or the new one. walStartID is the id floor at the WAL's
// start: the kept add records travel into the new segment, so the manifest
// must keep recording the NextID from *before* they were replayed, or the
// next recovery would reject them as id reuse.
func (t *Tree[T]) rewriteWAL(kept []walRecord, walStartID uint32) error {
	newSeq := t.walSeq + 1
	nw, err := createWAL(t.fs, walPath(t.opts.Dir, newSeq), t.opts.NoFsync)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		nw.f.Close()
		t.fs.Remove(nw.path)
		return err
	}
	for _, rec := range kept {
		if err := nw.append(rec.op, rec.id, rec.payload); err != nil {
			return abort(err)
		}
	}
	if err := nw.sync(); err != nil {
		return abort(err)
	}
	replayedTo := t.nextID
	t.nextID = walStartID
	err = t.commitLocked(t.tiers, newSeq)
	t.nextID = replayedTo
	if err != nil {
		return abort(err)
	}
	old := t.wal
	t.wal = nw
	t.walSeq = newSeq
	old.close()
	t.fs.Remove(old.path)
	return nil
}

// BaseN returns the size of the immutable base corpus.
func (t *Tree[T]) BaseN() int { return t.opts.BaseN }

// Space returns the distance space the tree was opened under.
func (t *Tree[T]) Space() space.Space[T] { return t.opts.Space }

// isLiveLocked reports whether id currently refers to a live object.
func (t *Tree[T]) isLiveLocked(id uint32) bool {
	if local, ok := t.mem.find(id); ok {
		return !t.mem.dyn.Deleted(local)
	}
	if _, dead := t.deleted[id]; dead {
		return false
	}
	if int(id) < t.opts.BaseN {
		return true
	}
	for _, tr := range t.tiers {
		if _, ok := slices.BinarySearch(tr.ids, id); ok {
			return true
		}
	}
	return false
}

// Add ingests one object from its raw wire payload and returns its global
// id. The write is WAL-appended and fsynced before it returns — an
// acknowledged add survives kill -9.
func (t *Tree[T]) Add(raw []byte) (uint32, error) {
	ids, err := t.AddBatch([][]byte{raw})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// AddBatch ingests a batch of objects with a single durability barrier. All
// payloads are decoded before anything is applied, so a malformed payload
// rejects the whole batch.
func (t *Tree[T]) AddBatch(raws [][]byte) ([]uint32, error) {
	if len(raws) == 0 {
		return nil, nil
	}
	objs := make([]T, len(raws))
	for i, raw := range raws {
		obj, err := t.opts.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("lsm: object %d: %v: %w", i, err, ErrInvalid)
		}
		objs[i] = obj
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.writableLocked(); err != nil {
		return nil, err
	}
	// Append and sync the whole batch before any of it becomes visible:
	// a write that errors to the client is then never served from the
	// memtable of this process. (Its WAL bytes may still be replayed after
	// a re-open — a failed commit's outcome is indeterminate, like any
	// failed commit — but it can never be *served yet errored* in the same
	// process that reported the failure.)
	ids := make([]uint32, len(raws))
	for i, raw := range raws {
		ids[i] = t.nextID + uint32(i)
		if err := t.wal.append(walOpAdd, ids[i], raw); err != nil {
			return nil, t.poisonLocked(fmt.Errorf("WAL append: %w", err))
		}
	}
	if err := t.wal.sync(); err != nil {
		return nil, t.poisonLocked(fmt.Errorf("WAL fsync: %w", err))
	}
	for i, raw := range raws {
		if err := t.mem.add(ids[i], objs[i], slices.Clone(raw)); err != nil {
			return nil, err
		}
		t.nextID = ids[i] + 1
	}
	if t.mem.dyn.Live() >= t.opts.MemtableCap {
		if _, err := t.sealLocked(); err != nil {
			// The writes themselves are durable and acknowledged; a failed
			// seal only means the memtable stays mutable. Surface it.
			return ids, fmt.Errorf("lsm: sealing full memtable: %w", err)
		}
	}
	return ids, nil
}

// Delete tombstones one live object.
func (t *Tree[T]) Delete(id uint32) error {
	return t.DeleteBatch([]uint32{id})
}

// DeleteBatch tombstones a batch of live objects with a single durability
// barrier. Every id must name a distinct live object, or the whole batch is
// rejected before anything is applied.
func (t *Tree[T]) DeleteBatch(ids []uint32) error {
	if len(ids) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.writableLocked(); err != nil {
		return err
	}
	seen := make(map[uint32]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			return fmt.Errorf("lsm: duplicate id %d in delete batch: %w", id, ErrInvalid)
		}
		seen[id] = struct{}{}
		if !t.isLiveLocked(id) {
			return fmt.Errorf("lsm: id %d is unknown or already deleted: %w", id, ErrInvalid)
		}
	}
	for _, id := range ids {
		if err := t.wal.append(walOpDelete, id, nil); err != nil {
			return t.poisonLocked(fmt.Errorf("WAL append: %w", err))
		}
	}
	if err := t.wal.sync(); err != nil {
		return t.poisonLocked(fmt.Errorf("WAL fsync: %w", err))
	}
	for _, id := range ids {
		if err := t.applyDelete(id); err != nil {
			return err
		}
	}
	return nil
}

// applyDelete routes a validated delete: memtable-resident ids are deleted
// inside the memtable index (their objects will simply be excluded from the
// next seal — no tombstone ever needs persisting), everything else joins
// the global mask and the pending tombstones of the current WAL segment.
func (t *Tree[T]) applyDelete(id uint32) error {
	if local, ok := t.mem.find(id); ok {
		if t.mem.dyn.Deleted(local) {
			return fmt.Errorf("lsm: id %d already deleted", id)
		}
		return t.mem.dyn.Delete(local)
	}
	if _, dead := t.deleted[id]; dead {
		return fmt.Errorf("lsm: id %d already deleted", id)
	}
	if int(id) >= t.opts.BaseN && !t.inTiersLocked(id) {
		return fmt.Errorf("lsm: id %d is unknown", id)
	}
	t.deleted[id] = struct{}{}
	t.segTombs = append(t.segTombs, id)
	return nil
}

func (t *Tree[T]) inTiersLocked(id uint32) bool {
	for _, tr := range t.tiers {
		if _, ok := slices.BinarySearch(tr.ids, id); ok {
			return true
		}
	}
	return false
}

// writableLocked rejects writes on a closed, poisoned or read-only tree.
func (t *Tree[T]) writableLocked() error {
	if t.closed {
		return fmt.Errorf("lsm: tree is closed")
	}
	if t.poisoned != nil {
		return fmt.Errorf("%w (cause: %v)", ErrPoisoned, t.poisoned)
	}
	if t.readOnly != nil {
		return fmt.Errorf("%w (cause: %v)", ErrReadOnly, t.readOnly)
	}
	if t.wal == nil {
		return fmt.Errorf("lsm: tree lost its WAL to an earlier seal failure; re-open to recover")
	}
	return nil
}

// poisonLocked records a WAL I/O failure and flips the tree into the
// poisoned state (see ErrPoisoned). It returns the error the failing write
// should surface to its client, already carrying the sentinel so the
// serving layer maps it to 503 without special-casing the first failure.
func (t *Tree[T]) poisonLocked(cause error) error {
	if t.poisoned == nil {
		t.poisoned = cause
	}
	t.lastIOErr = cause
	return fmt.Errorf("%w (cause: %v)", ErrPoisoned, cause)
}

// degradeLocked records a seal/compaction storage failure and flips the
// tree read-only (see ErrReadOnly), returning the error to surface.
func (t *Tree[T]) degradeLocked(cause error) error {
	if t.readOnly == nil {
		t.readOnly = cause
	}
	t.lastIOErr = cause
	return fmt.Errorf("%w (cause: %v)", ErrReadOnly, cause)
}

// Flush seals the memtable into a tier regardless of fill level. It returns
// the sealed tier's summary, or nil if there was nothing to seal.
func (t *Tree[T]) Flush() (*TierStatus, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.writableLocked(); err != nil {
		return nil, err
	}
	return t.sealLocked()
}

// Unsealed returns the number of WAL records the current segment holds —
// the writes that only the WAL makes durable until the next seal. The
// serving layer gates hot reload on this being zero.
func (t *Tree[T]) Unsealed() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.wal == nil {
		return 0
	}
	return t.wal.records
}

// sealLocked rotates the current WAL segment into an immutable tier:
// segment file, index file, manifest commit, fresh WAL, fresh memtable —
// in that order, so a crash at any boundary recovers to either the
// pre-seal or post-seal state with no acknowledged write lost.
func (t *Tree[T]) sealLocked() (*TierStatus, error) {
	if t.wal.records == 0 {
		return nil, nil
	}
	tr := &tier[T]{seq: t.tierSeq}
	for local, gid := range t.mem.ids {
		if t.mem.dyn.Deleted(uint32(local)) {
			continue // added and deleted within this segment: never persisted
		}
		tr.ids = append(tr.ids, gid)
		tr.blobs = append(tr.blobs, t.mem.blobs[local])
		tr.objs = append(tr.objs, t.mem.objs[local])
	}
	tr.tombs = slices.Clone(t.segTombs)
	slices.Sort(tr.tombs)

	newWalSeq := t.walSeq + 1
	if len(tr.ids) == 0 && len(tr.tombs) == 0 {
		// Everything in this segment cancelled out. No tier to write; just
		// rotate the WAL so replay stays bounded. The manifest still
		// commits NextID: even fully-cancelled ids are never reused.
		if err := t.commitLocked(t.tiers, newWalSeq); err != nil {
			return nil, t.degradeLocked(fmt.Errorf("committing WAL rotation: %w", err))
		}
		return nil, t.rotateWalLocked(newWalSeq)
	}

	if len(tr.ids) > 0 {
		idx, err := t.opts.Build(t.opts.Space, tr.objs)
		if err != nil {
			return nil, fmt.Errorf("lsm: building tier %d index: %w", tr.seq, err)
		}
		tr.idx = idx
		if err := persist.SaveFileFS(t.fs, idxPath(t.opts.Dir, tr.seq), idx); err != nil {
			return nil, t.degradeLocked(fmt.Errorf("writing tier %d index: %w", tr.seq, err))
		}
	}
	if err := writeSegment(t.fs, t.opts.Dir, t.opts.Space.Name(), tr); err != nil {
		return nil, t.degradeLocked(fmt.Errorf("writing tier %d segment: %w", tr.seq, err))
	}
	t.tierSeq++
	if err := t.commitLocked(append(slices.Clone(t.tiers), tr), newWalSeq); err != nil {
		t.tierSeq-- // manifest unchanged; the orphaned files are debris
		return nil, t.degradeLocked(fmt.Errorf("committing tier %d: %w", tr.seq, err))
	}
	t.tiers = append(t.tiers, tr)
	t.searchEpoch++
	if err := t.rotateWalLocked(newWalSeq); err != nil {
		return nil, err
	}
	t.maybeCompactLocked()
	st := tierStatusOf(tr)
	return &st, nil
}

// commitLocked writes the manifest reflecting the given tier list and WAL
// sequence plus the tree's current counters — the atomic commit point of
// seal, rotation and compaction.
func (t *Tree[T]) commitLocked(tiers []*tier[T], walSeq uint64) error {
	man := &manifest{
		Version:     manifestVersion,
		Space:       t.opts.Space.Name(),
		BaseN:       t.opts.BaseN,
		NextID:      t.nextID,
		WalSeq:      walSeq,
		NextTierSeq: t.tierSeq,
	}
	for _, tr := range tiers {
		mt := manifestTier{Seq: tr.seq, N: len(tr.ids), Tombstones: len(tr.tombs)}
		if tr.idx != nil {
			mt.Kind = tr.idx.Name()
		}
		man.Tiers = append(man.Tiers, mt)
	}
	return writeManifest(t.fs, t.opts.Dir, man)
}

// rotateWalLocked switches to the (already-committed) new WAL segment and
// resets the memtable state. The old segment's contents are fully covered
// by the just-sealed tier, so it is closed and removed.
func (t *Tree[T]) rotateWalLocked(newWalSeq uint64) error {
	old := t.wal
	w, err := createWAL(t.fs, walPath(t.opts.Dir, newWalSeq), t.opts.NoFsync)
	if err != nil {
		// The manifest already points at the new segment; without it the
		// tree cannot write (reads are unaffected), so it poisons itself.
		// Re-opening recovers: openWAL creates the missing file.
		t.wal = nil
		old.close()
		return t.poisonLocked(fmt.Errorf("creating WAL segment %d: %w", newWalSeq, err))
	}
	t.wal = w
	t.walSeq = newWalSeq
	old.close()
	t.fs.Remove(old.path)
	dyn, err := t.opts.NewMemtable(t.opts.Space)
	if err != nil {
		return err
	}
	t.mem = &memtable[T]{dyn: dyn}
	t.segTombs = nil
	t.searchEpoch++
	return nil
}

// maybeCompactLocked starts a background compaction when the tier stack is
// deep enough and none is already running. The compaction job snapshots the
// current tiers and tombstone set; seals may append new tiers concurrently
// (only compaction ever removes tiers, and it is single-flight, so the
// snapshot stays a stable prefix of the live list).
func (t *Tree[T]) maybeCompactLocked() {
	if t.compacting || t.closed || len(t.tiers) <= t.opts.MaxTiers {
		return
	}
	if t.readOnly != nil || t.poisoned != nil {
		// A degraded store must not keep launching compactions that write
		// to the same failing disk; the backlog drains after re-open.
		return
	}
	inputs := slices.Clone(t.tiers)
	dead := make(map[uint32]struct{}, len(t.deleted))
	for id := range t.deleted {
		dead[id] = struct{}{}
	}
	seq := t.tierSeq
	t.tierSeq++
	t.compacting = true
	t.wg.Add(1)
	go t.compact(inputs, dead, seq)
}

// compact merges the input tiers into one: objects deleted by the
// snapshotted tombstone set are dropped, surviving objects keep their ids,
// and only tombstones still targeting the base corpus are carried forward
// (a tombstone for an added object either just dropped its target or
// targets nothing — either way it is spent). Runs off the lock; the merge
// work fans out over an engine.Pool, and the commit (manifest + in-memory
// swap) retakes the lock.
func (t *Tree[T]) compact(inputs []*tier[T], dead map[uint32]struct{}, seq uint64) {
	defer t.wg.Done()
	fail := func(err error) {
		t.mu.Lock()
		t.compactErr = err
		t.compacting = false
		t.mu.Unlock()
	}
	// failIO is fail for storage failures: beyond recording the error it
	// flips the tree read-only — a store that cannot write tiers must stop
	// accepting writes it will never be able to seal. The half-written
	// output files are debris the manifest never named; the next recovery
	// removes them.
	failIO := func(err error) {
		t.mu.Lock()
		t.degradeLocked(err)
		t.compactErr = err
		t.compacting = false
		t.mu.Unlock()
	}
	defer func() {
		if r := recover(); r != nil {
			fail(fmt.Errorf("lsm: compaction panicked: %v", r))
		}
	}()

	type kept struct {
		ids   []uint32
		blobs [][]byte
		objs  []T
		tombs []uint32
	}
	parts := make([]kept, len(inputs))
	engine.Pool{}.For(len(inputs), func(i int) {
		in := inputs[i]
		var k kept
		for j, id := range in.ids {
			if _, d := dead[id]; d {
				continue
			}
			k.ids = append(k.ids, id)
			k.blobs = append(k.blobs, in.blobs[j])
			k.objs = append(k.objs, in.objs[j])
		}
		for _, id := range in.tombs {
			if int(id) < t.opts.BaseN {
				k.tombs = append(k.tombs, id)
			}
		}
		parts[i] = k
	})

	tr := &tier[T]{seq: seq}
	for _, k := range parts {
		tr.ids = append(tr.ids, k.ids...)
		tr.blobs = append(tr.blobs, k.blobs...)
		tr.objs = append(tr.objs, k.objs...)
		tr.tombs = append(tr.tombs, k.tombs...)
	}
	slices.Sort(tr.tombs)
	tr.tombs = slices.Compact(tr.tombs)

	merged := tr
	if len(tr.ids) == 0 && len(tr.tombs) == 0 {
		merged = nil // everything died; the inputs are replaced by nothing
	} else {
		if len(tr.ids) > 0 {
			idx, err := t.opts.Build(t.opts.Space, tr.objs)
			if err != nil {
				fail(fmt.Errorf("lsm: building compacted index: %w", err))
				return
			}
			tr.idx = idx
			if err := persist.SaveFileFS(t.fs, idxPath(t.opts.Dir, seq), idx); err != nil {
				failIO(fmt.Errorf("lsm: writing compacted index: %w", err))
				return
			}
		}
		if err := writeSegment(t.fs, t.opts.Dir, t.opts.Space.Name(), tr); err != nil {
			failIO(fmt.Errorf("lsm: writing compacted segment: %w", err))
			return
		}
	}

	t.mu.Lock()
	var newTiers []*tier[T]
	if merged != nil {
		newTiers = append(newTiers, merged)
	}
	newTiers = append(newTiers, t.tiers[len(inputs):]...)
	if err := t.commitLocked(newTiers, t.walSeq); err != nil {
		t.degradeLocked(fmt.Errorf("lsm: committing compaction: %w", err))
		t.compactErr = err
		t.compacting = false
		t.mu.Unlock()
		return
	}
	t.tiers = newTiers
	t.searchEpoch++
	// Rebuild the mask: tombstones of the surviving tiers plus the current
	// segment's pending deletes. Entries whose targets were just dropped
	// vanish here, so the k-inflation the mask drives stays proportional
	// to real masking work.
	t.deleted = make(map[uint32]struct{})
	for _, tr := range t.tiers {
		for _, id := range tr.tombs {
			t.deleted[id] = struct{}{}
		}
	}
	for _, id := range t.segTombs {
		t.deleted[id] = struct{}{}
	}
	t.compactErr = nil
	t.mu.Unlock()

	// Delete input files outside the lock, and only then clear the
	// compacting flag: Compacting == false promises the whole cycle —
	// including disk GC — is done, which recovery tests and operators rely
	// on. The manifest no longer names these files, so a crash here just
	// leaves debris for removeStale.
	for _, in := range inputs {
		t.fs.Remove(segPath(t.opts.Dir, in.seq))
		t.fs.Remove(idxPath(t.opts.Dir, in.seq))
	}
	t.mu.Lock()
	t.compacting = false
	// Seals that landed while this cycle ran were skipped by
	// maybeCompactLocked; re-check here so the tree converges to
	// <= MaxTiers instead of settling wherever the race left it.
	t.maybeCompactLocked()
	t.mu.Unlock()
}

// Search answers a query over the live set: base corpus (searched through
// the supplied immutable base index, nil for a base-less tree) plus sealed
// tiers plus memtable, masked by the tombstone union and merged with the
// canonical (dist, id) rule. Each component is queried with k inflated by
// the mask size, so masking can never push a live answer out of reach: the
// merged result is exactly what a flat index over the live set would
// return when every component searches exactly.
func (t *Tree[T]) Search(base index.Index[T], query T, k int) []topk.Neighbor {
	return t.SearchAppend(nil, base, query, k)
}

// SearchAppend answers like Search but appends the results to dst: the
// whole merge — per-component searches, id translation, tombstone masking,
// top-k selection — runs on a pooled search state, so a warm call with a
// dst of sufficient capacity performs zero allocations.
func (t *Tree[T]) SearchAppend(dst []topk.Neighbor, base index.Index[T], query T, k int) []topk.Neighbor {
	dst, _ = t.SearchAppendCtx(context.Background(), dst, base, query, k)
	return dst
}

// SearchAppendCtx is SearchAppend with cooperative cancellation: ctx is
// checked between component searches (base, each tier, memtable), so a
// query its client has abandoned — a server timeout, a dropped connection —
// stops scattering instead of running every remaining component to
// completion. On cancellation dst is returned unchanged alongside the ctx
// error. The checks are allocation-free; the zero-alloc warm-path guarantee
// of SearchAppend holds here too.
func (t *Tree[T]) SearchAppendCtx(ctx context.Context, dst []topk.Neighbor, base index.Index[T], query T, k int) ([]topk.Neighbor, error) {
	return t.SearchAppendTraced(ctx, dst, base, query, k, nil)
}

// SearchAppendTraced is SearchAppendCtx with per-component attribution:
// when tr is non-nil, the time spent in the base index, the sealed tiers,
// the memtable, the tombstone masking pass and the final merge is recorded
// into it, alongside whatever stage detail the component searchers
// themselves record (a traceable component receives the same tr). The
// trace pointer is (re)set on every cached component searcher on every
// query — nil included — so a pooled search state can never write into a
// previous query's trace. Tracing adds no allocations: the warm zero-alloc
// guarantee holds with tr attached.
func (t *Tree[T]) SearchAppendTraced(ctx context.Context, dst []topk.Neighbor, base index.Index[T], query T, k int, tr *obs.QueryTrace) ([]topk.Neighbor, error) {
	if k <= 0 {
		return dst, nil
	}
	if err := ctx.Err(); err != nil {
		return dst, err
	}
	st := t.searchPool.Get()
	defer t.searchPool.Put(st)
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.refreshLocked(st, base)
	kq := k + len(t.deleted)
	buf := st.buf[:0]
	var t0 time.Time
	if st.baseS != nil {
		if st.baseT != nil {
			st.baseT.SetTrace(tr)
		}
		if tr != nil {
			tr.Components++
			t0 = time.Now()
		}
		buf = st.baseS.SearchAppend(buf, query, kq)
		if tr != nil {
			obs.AddSince(&tr.BaseNs, t0)
		}
	}
	for ti, tier := range t.tiers {
		if tier.idx == nil {
			continue
		}
		if err := ctx.Err(); err != nil {
			st.buf = buf[:0]
			return dst, err
		}
		if st.tierT[ti] != nil {
			st.tierT[ti].SetTrace(tr)
		}
		if tr != nil {
			tr.Components++
			t0 = time.Now()
		}
		start := len(buf)
		buf = st.tierS[ti].SearchAppend(buf, query, kq)
		for i := start; i < len(buf); i++ {
			buf[i].ID = tier.ids[buf[i].ID]
		}
		if tr != nil {
			obs.AddSince(&tr.TierNs, t0)
		}
	}
	if err := ctx.Err(); err != nil {
		st.buf = buf[:0]
		return dst, err
	}
	if st.memT != nil {
		st.memT.SetTrace(tr)
	}
	if tr != nil {
		tr.Components++
		t0 = time.Now()
	}
	start := len(buf)
	buf = st.memS.SearchAppend(buf, query, kq)
	for i := start; i < len(buf); i++ {
		buf[i].ID = t.mem.ids[buf[i].ID]
	}
	if tr != nil {
		obs.AddSince(&tr.MemtableNs, t0)
	}
	if len(t.deleted) > 0 {
		if tr != nil {
			t0 = time.Now()
		}
		kept := buf[:0]
		for _, nb := range buf {
			if _, dead := t.deleted[nb.ID]; !dead {
				kept = append(kept, nb)
			}
		}
		buf = kept
		if tr != nil {
			obs.AddSince(&tr.MaskNs, t0)
		}
	}
	if tr != nil {
		t0 = time.Now()
	}
	top := topk.SelectK(buf, k)
	// Copy the answer out: buf is pooled and must never escape to the
	// caller. Keep the (possibly regrown) buffer for the next query.
	dst = append(dst, top...)
	if tr != nil {
		obs.AddSince(&tr.MergeNs, t0)
	}
	st.buf = buf[:0]
	return dst, nil
}

// refreshLocked brings a pooled search state up to date with the tree's
// current component set: searchers are re-minted only when the structural
// epoch moved (seal or compaction) or the caller's base index changed.
func (t *Tree[T]) refreshLocked(st *searchState[T], base index.Index[T]) {
	if st.epoch != t.searchEpoch || st.memS == nil {
		st.tierS = st.tierS[:0]
		st.tierT = st.tierT[:0]
		for _, tr := range t.tiers {
			var s index.Searcher[T]
			if tr.idx != nil {
				s = mintSearcher(tr.idx)
			}
			st.tierS = append(st.tierS, s)
			tt, _ := s.(obs.Traceable)
			st.tierT = append(st.tierT, tt)
		}
		st.memS = mintSearcher[T](t.mem.dyn)
		st.memT, _ = st.memS.(obs.Traceable)
		st.epoch = t.searchEpoch
	}
	if base == nil {
		st.base, st.baseS, st.baseT = nil, nil, nil
	} else if st.base != base || st.baseS == nil {
		st.base = base
		st.baseS = mintSearcher(base)
		st.baseT, _ = st.baseS.(obs.Traceable)
	}
}

// TierStatus summarizes one sealed tier for /statusz.
type TierStatus struct {
	Seq        uint64 `json:"seq"`
	N          int    `json:"n"`
	Tombstones int    `json:"tombstones"`
	Kind       string `json:"kind,omitempty"`
}

func tierStatusOf[T any](tr *tier[T]) TierStatus {
	st := TierStatus{Seq: tr.seq, N: len(tr.ids), Tombstones: len(tr.tombs)}
	if tr.idx != nil {
		st.Kind = tr.idx.Name()
	}
	return st
}

// Storage states a tree reports in Status.State.
const (
	// StateOK: the tree is fully serving — reads and writes.
	StateOK = "ok"
	// StatePoisoned: a WAL write or fsync failed; writes return
	// ErrPoisoned (503), searches keep serving. Re-open to recover.
	StatePoisoned = "poisoned"
	// StateReadOnly: a seal or compaction hit a storage failure; writes
	// return ErrReadOnly (507), searches keep serving. Re-open to recover.
	StateReadOnly = "read-only"
)

// Status is a point-in-time snapshot of the tree's shape.
type Status struct {
	BaseN        int          `json:"base_n"`
	NextID       uint32       `json:"next_id"`
	Live         int          `json:"live"`
	MemtableLive int          `json:"memtable_live"`
	MemtableCap  int          `json:"memtable_cap"`
	Deleted      int          `json:"deleted"`
	WalSeq       uint64       `json:"wal_seq"`
	WalRecords   int          `json:"wal_records"`
	WalBytes     int64        `json:"wal_bytes"`
	Tiers        []TierStatus `json:"tiers"`
	Compacting   bool         `json:"compacting,omitempty"`
	CompactErr   string       `json:"compact_err,omitempty"`
	// State is the storage state: StateOK, StatePoisoned or StateReadOnly.
	State string `json:"state"`
	// LastIOError is the most recent storage failure, empty when none.
	LastIOError string `json:"last_io_error,omitempty"`
	// Quarantined lists corrupt tier files recovery renamed aside
	// ("<file>: <cause>"), empty when the last recovery was clean.
	Quarantined []string `json:"quarantined,omitempty"`
}

// Degraded reports whether the tree is serving in a degraded state —
// poisoned, read-only, or carrying quarantined tiers — and why. An empty
// slice means fully healthy; /healthz surfaces the reasons.
func (s *Status) Degraded() []string {
	var reasons []string
	if s.State != StateOK {
		reasons = append(reasons, "storage "+s.State)
	}
	if len(s.Quarantined) > 0 {
		reasons = append(reasons, fmt.Sprintf("%d quarantined tiers", len(s.Quarantined)))
	}
	return reasons
}

// Status reports the tree's current shape.
func (t *Tree[T]) Status() Status {
	t.mu.RLock()
	defer t.mu.RUnlock()
	st := Status{
		BaseN:        t.opts.BaseN,
		NextID:       t.nextID,
		MemtableLive: t.mem.dyn.Live(),
		MemtableCap:  t.opts.MemtableCap,
		Deleted:      len(t.deleted),
		WalSeq:       t.walSeq,
		Compacting:   t.compacting,
		State:        StateOK,
		Quarantined:  t.quarantined,
	}
	switch {
	case t.poisoned != nil:
		st.State = StatePoisoned
	case t.readOnly != nil:
		st.State = StateReadOnly
	}
	if t.lastIOErr != nil {
		st.LastIOError = t.lastIOErr.Error()
	}
	if t.wal != nil {
		st.WalRecords = t.wal.records
		st.WalBytes = t.wal.size
	}
	if t.compactErr != nil {
		st.CompactErr = t.compactErr.Error()
	}
	live := t.opts.BaseN + st.MemtableLive - len(t.deleted)
	for _, tr := range t.tiers {
		st.Tiers = append(st.Tiers, tierStatusOf(tr))
		live += len(tr.ids)
	}
	st.Live = live
	return st
}

// LiveIDs returns the ascending global ids of every live object (base,
// tiers and memtable). It exists for identity testing — a flat reference
// index is built over exactly these objects — and for offline tooling; it
// allocates freely and is not a serving path.
func (t *Tree[T]) LiveIDs() []uint32 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var ids []uint32
	for id := 0; id < t.opts.BaseN; id++ {
		if _, dead := t.deleted[uint32(id)]; !dead {
			ids = append(ids, uint32(id))
		}
	}
	for _, tr := range t.tiers {
		for _, id := range tr.ids {
			if _, dead := t.deleted[id]; !dead {
				ids = append(ids, id)
			}
		}
	}
	for local, id := range t.mem.ids {
		if !t.mem.dyn.Deleted(uint32(local)) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Object returns the live object with the given added-object id (ids below
// BaseN live in the caller's base corpus). Testing/tooling path.
func (t *Tree[T]) Object(id uint32) (T, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var zero T
	if local, ok := t.mem.find(id); ok {
		if t.mem.dyn.Deleted(local) {
			return zero, false
		}
		return t.mem.objs[local], true
	}
	if _, dead := t.deleted[id]; dead {
		return zero, false
	}
	for _, tr := range t.tiers {
		if i, ok := slices.BinarySearch(tr.ids, id); ok {
			return tr.objs[i], true
		}
	}
	return zero, false
}

// Close waits for background compaction and closes the WAL. Unsealed writes
// stay in the WAL segment and are replayed by the next Open; Close does not
// seal (a crash and a clean shutdown recover identically, which keeps the
// recovery path continuously exercised).
func (t *Tree[T]) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.wg.Wait()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wal == nil {
		return nil
	}
	err := t.wal.close()
	t.wal = nil
	return err
}
