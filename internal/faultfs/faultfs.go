// Package faultfs wraps a vfs.FS and injects storage faults at chosen call
// sites: the Nth fsync on WAL files fails with EIO, the next write to a
// segment file runs out of disk halfway, every read after a simulated crash
// returns an error. The storage pipeline (internal/lsm, internal/persist)
// is written against the vfs boundary precisely so this package can probe
// it: the keystone fault-sweep test injects one fault at every injectable
// call across an add/seal/compact script and asserts the fail-stop
// invariants, and scripts/fault_smoke.sh boots the real serving daemon on a
// faultfs-backed tree via an env knob.
//
// # Model
//
// Every FS and File operation is a *site*, identified by its Op kind and
// the path it touches. Calls are counted per rule: a Rule fires on the Nth
// call matching its Op set and path substring (N counts from 1; 0 means
// every matching call). A firing rule normally fails just that one call —
// the single-fault model — but can instead be Sticky (every later matching
// call fails too, a dying disk) or Crash (the op *succeeds*, then the whole
// filesystem goes down, modeling a kernel panic right after, say, a rename
// barrier).
//
// The wrapper also records every injectable call it sees, so a sweep can
// run a script once fault-free to enumerate the sites and then replay it
// once per site with InjectNthCall.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"repro/internal/vfs"
)

// Op identifies one kind of injectable filesystem operation.
type Op string

const (
	OpOpen    Op = "open"    // Open / OpenFile without O_CREATE
	OpCreate  Op = "create"  // CreateTemp / OpenFile with O_CREATE
	OpRead    Op = "read"    // File.Read and FS.ReadFile
	OpWrite   Op = "write"   // File.Write
	OpSync    Op = "sync"    // File.Sync
	OpSyncDir Op = "syncdir" // FS.SyncDir
	OpRename  Op = "rename"  // FS.Rename
	OpRemove  Op = "remove"  // FS.Remove
)

// WriteOps are the sites whose failure can lose or tear durable state: the
// write-side sweep injects at each of these.
func WriteOps() []Op { return []Op{OpCreate, OpWrite, OpSync, OpSyncDir, OpRename} }

// ReadOps are the recovery/load-side sites: the read-side sweep injects at
// each of these.
func ReadOps() []Op { return []Op{OpOpen, OpRead} }

// ErrCrashed is returned by every operation after a Crash rule fired: the
// simulated machine is down until a fresh FS (a "reboot") is constructed
// over the same directory.
var ErrCrashed = errors.New("faultfs: filesystem crashed")

// Errs maps the spec names of the injectable errors (see Parse).
var Errs = map[string]error{
	"eio":    syscall.EIO,
	"enospc": syscall.ENOSPC,
}

// Rule selects a call site and the failure to inject there.
type Rule struct {
	// Ops are the operation kinds the rule matches; empty matches all.
	Ops []Op
	// PathContains restricts matches to paths containing the substring;
	// empty matches every path.
	PathContains string
	// Nth fires the rule on the Nth matching call (1-based). 0 fires on
	// every matching call.
	Nth int
	// Err is the injected error (required unless Crash is set).
	Err error
	// Short makes a matching write a *short* write: half the buffer is
	// written, then Err is returned — the torn-tail shape a full disk or a
	// crash mid-write leaves behind.
	Short bool
	// Sticky keeps the rule firing on every matching call after the Nth —
	// a fault that does not go away, like a dying disk.
	Sticky bool
	// Crash lets the matching call SUCCEED and then takes the whole
	// filesystem down: every subsequent operation returns ErrCrashed.
	// Models "the machine died right after the rename hit the platter".
	Crash bool
}

func (r Rule) matches(op Op, path string) bool {
	if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
		return false
	}
	if len(r.Ops) == 0 {
		return true
	}
	for _, o := range r.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// Call is one observed injectable operation.
type Call struct {
	Op   Op
	Path string
}

type armedRule struct {
	Rule
	seen  int // matching calls observed so far
	fired bool
}

// FS wraps an inner vfs.FS with fault injection. Construct with New, arm
// faults with Inject/InjectNthCall, then hand it to the storage code under
// test. Safe for concurrent use.
type FS struct {
	inner vfs.FS

	mu      sync.Mutex
	rules   []*armedRule
	calls   []Call
	fired   int
	crashed bool
}

// New wraps inner (nil means the real OS filesystem) with no faults armed;
// until Inject is called it only records calls.
func New(inner vfs.FS) *FS {
	if inner == nil {
		inner = vfs.OS{}
	}
	return &FS{inner: inner}
}

// Inject arms one rule.
func (f *FS) Inject(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &armedRule{Rule: r})
}

// InjectNthCall arms a rule that fails the nth injectable call (1-based,
// in the order Calls records them) whose op is in ops, regardless of path.
// This is the sweep primitive: enumerate with a fault-free run, then fail
// site i of the same script.
func (f *FS) InjectNthCall(n int, err error, ops ...Op) {
	f.Inject(Rule{Ops: ops, Nth: n, Err: err})
}

// Calls returns every injectable call observed so far, in order.
func (f *FS) Calls() []Call {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Call, len(f.calls))
	copy(out, f.calls)
	return out
}

// CountCalls returns how many observed calls match the given ops (all ops
// when none are given).
func (f *FS) CountCalls(ops ...Op) int {
	n := 0
	for _, c := range f.Calls() {
		if len(ops) == 0 {
			n++
			continue
		}
		for _, op := range ops {
			if c.Op == op {
				n++
				break
			}
		}
	}
	return n
}

// Fired reports how many times any rule injected a fault.
func (f *FS) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// check records the call and decides the injected outcome: err is the
// injected failure (nil for none), short means "perform half the write
// then return err", crashAfter means "perform the op, then go down".
func (f *FS) check(op Op, path string) (err error, short, crashAfter bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("%w: %s %s", ErrCrashed, op, path), false, false
	}
	f.calls = append(f.calls, Call{Op: op, Path: path})
	for _, r := range f.rules {
		if !r.matches(op, path) {
			continue
		}
		r.seen++
		fire := false
		switch {
		case r.Nth == 0:
			fire = true
		case r.seen == r.Nth:
			fire = true
		case r.seen > r.Nth && r.Sticky:
			fire = true
		}
		if !fire {
			continue
		}
		r.fired = true
		f.fired++
		if r.Crash {
			f.crashed = true
			return nil, false, true
		}
		e := r.Err
		if e == nil {
			e = syscall.EIO
		}
		return fmt.Errorf("faultfs: injected %s on %s %s: %w", errName(e), op, path, e), r.Short, false
	}
	return nil, false, false
}

func errName(err error) string {
	switch {
	case errors.Is(err, syscall.ENOSPC):
		return "ENOSPC"
	case errors.Is(err, syscall.EIO):
		return "EIO"
	default:
		return err.Error()
	}
}

// --- FS interface ---

func (f *FS) Open(name string) (vfs.File, error) {
	if err, _, _ := f.check(OpOpen, name); err != nil {
		return nil, err
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

func (f *FS) OpenFile(name string, flag int, perm fs.FileMode) (vfs.File, error) {
	op := OpOpen
	if flag&syscall.O_CREAT != 0 {
		op = OpCreate
	}
	if err, _, _ := f.check(op, name); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

func (f *FS) CreateTemp(dir, pattern string) (vfs.File, error) {
	if err, _, _ := f.check(OpCreate, dir+"/"+pattern); err != nil {
		return nil, err
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

func (f *FS) ReadFile(name string) ([]byte, error) {
	if err, _, _ := f.check(OpRead, name); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FS) Rename(oldpath, newpath string) error {
	err, _, crashAfter := f.check(OpRename, newpath)
	if err != nil {
		return err
	}
	rerr := f.inner.Rename(oldpath, newpath)
	_ = crashAfter // the crash flag is already set; later ops fail
	return rerr
}

func (f *FS) Remove(name string) error {
	if err, _, _ := f.check(OpRemove, name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Chmod is not an injectable site: a chmod failure neither loses data nor
// tears a file, and counting it would bloat the sweep for nothing.
func (f *FS) Chmod(name string, mode fs.FileMode) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return fmt.Errorf("%w: chmod %s", ErrCrashed, name)
	}
	return f.inner.Chmod(name, mode)
}

// MkdirAll is likewise not an injectable site (it happens once, at Open,
// before any data is at risk).
func (f *FS) MkdirAll(path string, perm fs.FileMode) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return fmt.Errorf("%w: mkdir %s", ErrCrashed, path)
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, fmt.Errorf("%w: readdir %s", ErrCrashed, name)
	}
	return f.inner.ReadDir(name)
}

func (f *FS) SyncDir(dir string) error {
	err, _, crashAfter := f.check(OpSyncDir, dir)
	if err != nil {
		return err
	}
	serr := f.inner.SyncDir(dir)
	_ = crashAfter
	return serr
}

var _ vfs.FS = (*FS)(nil)

// --- File wrapper ---

type file struct {
	fs    *FS
	inner vfs.File
}

func (f *file) Name() string { return f.inner.Name() }

func (f *file) Read(p []byte) (int, error) {
	if err, _, _ := f.fs.check(OpRead, f.inner.Name()); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

func (f *file) Write(p []byte) (int, error) {
	err, short, crashAfter := f.fs.check(OpWrite, f.inner.Name())
	if err != nil {
		if short && len(p) > 0 {
			n, _ := f.inner.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	n, werr := f.inner.Write(p)
	_ = crashAfter
	return n, werr
}

func (f *file) Sync() error {
	err, _, crashAfter := f.fs.check(OpSync, f.inner.Name())
	if err != nil {
		return err
	}
	serr := f.inner.Sync()
	_ = crashAfter
	return serr
}

func (f *file) Seek(offset int64, whence int) (int64, error) {
	return f.inner.Seek(offset, whence)
}

func (f *file) Truncate(size int64) error {
	f.fs.mu.Lock()
	crashed := f.fs.crashed
	f.fs.mu.Unlock()
	if crashed {
		return fmt.Errorf("%w: truncate %s", ErrCrashed, f.inner.Name())
	}
	return f.inner.Truncate(size)
}

// Close always reaches the inner file: leaking OS file handles because the
// simulated disk died would make the *test harness* flaky, and close-time
// write-back failures are modeled by OpSync/OpWrite rules instead.
func (f *file) Close() error { return f.inner.Close() }

// --- Spec parsing (the permserve env knob) ---

// Parse builds an FS over the OS filesystem from a comma-separated rule
// spec, the form scripts/fault_smoke.sh passes through the PERMSERVE_FAULT_FS
// environment variable:
//
//	op:pathsubstr:n:err[:flags]
//
// op is one of open|create|read|write|sync|syncdir|rename|remove|any;
// pathsubstr restricts matching paths (empty = all); n is the 1-based
// matching-call ordinal (0 = every matching call); err is eio|enospc|short
// (short implies enospc with a half-written buffer) or crash. flags is an
// optional "sticky".
//
//	sync:wal-:3:eio          the 3rd fsync of a WAL segment fails with EIO
//	write:.seg:1:short       the 1st segment write is short (torn)
//	sync:wal-:2:eio:sticky   the 2nd and every later WAL fsync fails
//	rename:tiers.json:1:crash  the machine dies right after a manifest rename
func Parse(spec string) (*FS, error) {
	f := New(nil)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 4 || len(fields) > 5 {
			return nil, fmt.Errorf("faultfs: rule %q: want op:pathsubstr:n:err[:flags]", part)
		}
		var r Rule
		switch op := Op(fields[0]); op {
		case "any":
		case OpOpen, OpCreate, OpRead, OpWrite, OpSync, OpSyncDir, OpRename, OpRemove:
			r.Ops = []Op{op}
		default:
			return nil, fmt.Errorf("faultfs: rule %q: unknown op %q", part, fields[0])
		}
		r.PathContains = fields[1]
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("faultfs: rule %q: bad call ordinal %q", part, fields[2])
		}
		r.Nth = n
		switch fields[3] {
		case "eio":
			r.Err = syscall.EIO
		case "enospc":
			r.Err = syscall.ENOSPC
		case "short":
			r.Err = syscall.ENOSPC
			r.Short = true
		case "crash":
			r.Crash = true
		default:
			return nil, fmt.Errorf("faultfs: rule %q: unknown error %q (want eio|enospc|short|crash)", part, fields[3])
		}
		if len(fields) == 5 {
			if fields[4] != "sticky" {
				return nil, fmt.Errorf("faultfs: rule %q: unknown flag %q", part, fields[4])
			}
			r.Sticky = true
		}
		f.Inject(r)
	}
	return f, nil
}
