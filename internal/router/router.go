package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/topk"
)

// maxBodyBytes caps an incoming request body, mirroring the serving daemon.
const maxBodyBytes = 64 << 20

// Options configure the HTTP scatter-gather front tier.
type Options struct {
	// Shards are the backend base URLs in shard order: Shards[i] must
	// serve shard i of every routed index set. At least one is required.
	Shards []string
	// FailOpen selects the degraded mode when a shard is down: true
	// answers from the surviving shards with "partial": true, false
	// answers 502. Default false (fail closed) — silently incomplete
	// answers must be opted into.
	FailOpen bool
	// ShardTimeout bounds each per-shard call (default 10s).
	ShardTimeout time.Duration
	// HedgeDelay, when positive, launches a speculative second attempt
	// against a shard that has not answered within the delay — tail
	// latency insurance at the cost of duplicate work. 0 disables.
	HedgeDelay time.Duration
	// Log receives routing events; nil means the process default logger.
	Log *log.Logger
}

// routedIndex is one routable index name with what discovery learned about
// it: per-shard metadata must agree on kind and space, and the shard sizes
// sum to the full corpus.
type routedIndex struct {
	kind        string
	space       string
	totalN      uint64
	generations []int64 // per shard
}

// Router is the scatter-gather HTTP front tier over S shard backends. It
// speaks the same /v1/indexes/{name}/search wire dialect as the serving
// daemon — to a client, a router over S shards is indistinguishable from
// one big permserve (byte-identical answers included, see the package doc),
// until a shard dies and the degraded-mode contract (Options.FailOpen)
// becomes visible.
//
// Create with New, which connects to every backend and validates the shard
// topology; mount via Handler.
type Router struct {
	backends   []*backend
	indexes    map[string]*routedIndex
	names      []string // sorted
	failOpen   bool
	hedgeDelay time.Duration
	timeout    time.Duration
	log        *log.Logger
	start      time.Time
	mux        *http.ServeMux
}

// New builds a router over opts.Shards. It fetches every backend's index
// list and refuses to start on an inconsistent topology: differing name
// sets, mismatched kind/space for a name, or a shard stamp that contradicts
// the backend's position — a miswired router would otherwise serve merged
// nonsense that looks healthy.
func New(opts Options) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("router: no shard backends")
	}
	if opts.ShardTimeout <= 0 {
		opts.ShardTimeout = 10 * time.Second
	}
	rt := &Router{
		indexes:    map[string]*routedIndex{},
		failOpen:   opts.FailOpen,
		hedgeDelay: opts.HedgeDelay,
		timeout:    opts.ShardTimeout,
		log:        opts.Log,
		start:      time.Now(),
		mux:        http.NewServeMux(),
	}
	if rt.log == nil {
		rt.log = log.Default()
	}
	for i, base := range opts.Shards {
		rt.backends = append(rt.backends, newBackend(i, base, opts.ShardTimeout, opts.HedgeDelay))
	}
	if err := rt.discover(); err != nil {
		return nil, err
	}
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /statusz", rt.handleStatusz)
	rt.mux.HandleFunc("GET /v1/indexes", rt.handleList)
	rt.mux.HandleFunc("POST /v1/indexes/{name}/search", rt.handleSearch)
	return rt, nil
}

// Handler returns the mounted routes.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Names lists the routable index names, sorted.
func (rt *Router) Names() []string { return rt.names }

// discover pulls and cross-validates every backend's index list.
func (rt *Router) discover() error {
	ctx, cancel := context.WithTimeout(context.Background(), rt.timeout)
	defer cancel()
	S := len(rt.backends)
	for i, b := range rt.backends {
		rows, err := b.listIndexes(ctx)
		if err != nil {
			return fmt.Errorf("router: shard %d (%s): %w", i, b.base, err)
		}
		if i > 0 && len(rows) != len(rt.indexes) {
			return fmt.Errorf("router: shard %d serves %d indexes, shard 0 serves %d", i, len(rows), len(rt.indexes))
		}
		for _, row := range rows {
			ri := rt.indexes[row.Name]
			if ri == nil {
				if i > 0 {
					return fmt.Errorf("router: shard %d serves index %q, shard 0 does not", i, row.Name)
				}
				ri = &routedIndex{kind: row.Kind, space: row.Space, generations: make([]int64, S)}
				rt.indexes[row.Name] = ri
				rt.names = append(rt.names, row.Name)
			}
			if row.Kind != ri.kind || row.Space != ri.space {
				return fmt.Errorf("router: index %q is %s/%s on shard %d, %s/%s on shard 0",
					row.Name, row.Kind, row.Space, i, ri.kind, ri.space)
			}
			if st := row.Shard; st != nil {
				if st.Shards != S {
					return fmt.Errorf("router: index %q on shard %d belongs to a %d-shard set, router has %d backends",
						row.Name, i, st.Shards, S)
				}
				if st.Index != i {
					return fmt.Errorf("router: backend %d (%s) serves shard %d of index %q — backends wired out of order",
						i, b.base, st.Index, row.Name)
				}
			} else {
				rt.log.Printf("router: index %q on shard %d carries no shard stamp; trusting the operator that backends hold disjoint partitions", row.Name, i)
			}
			ri.totalN += row.N
			ri.generations[i] = row.Generation
		}
	}
	if len(rt.names) == 0 {
		return fmt.Errorf("router: backends serve no indexes")
	}
	sort.Strings(rt.names)
	return nil
}

// The wire types mirror the serving daemon's byte for byte (field order
// included), plus the degraded-mode fields, which marshal only when a
// shard failed — a complete answer through the router is byte-identical to
// the same answer from an unsharded daemon.

type searchRequest struct {
	Query   json.RawMessage    `json:"query,omitempty"`
	Queries []json.RawMessage  `json:"queries,omitempty"`
	K       int                `json:"k,omitempty"`
	Params  map[string]float64 `json:"params,omitempty"`
}

type neighborJSON struct {
	ID   uint32  `json:"id"`
	Dist float64 `json:"dist"`
}

type singleResponse struct {
	Index   string         `json:"index"`
	K       int            `json:"k"`
	Results []neighborJSON `json:"results"`
	// Partial marks a fail-open answer merged from a strict subset of
	// shards: correct ids, true distances, but possibly missing
	// neighbors owned by the failed shards.
	Partial      bool  `json:"partial,omitempty"`
	FailedShards []int `json:"failed_shards,omitempty"`
}

type batchResponse struct {
	Index        string           `json:"index"`
	K            int              `json:"k"`
	Batch        [][]neighborJSON `json:"batch"`
	Partial      bool             `json:"partial,omitempty"`
	FailedShards []int            `json:"failed_shards,omitempty"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	errs := make([]error, len(rt.backends))
	var wg sync.WaitGroup
	for i, b := range rt.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			errs[i] = b.healthy(ctx)
		}(i, b)
	}
	wg.Wait()
	var down []map[string]any
	for i, err := range errs {
		if err != nil {
			down = append(down, map[string]any{"shard": i, "url": rt.backends[i].base, "error": err.Error()})
		}
	}
	if len(down) > 0 {
		rt.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "down": down})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// shardStatus is one row of GET /statusz.
type shardStatus struct {
	Shard         int     `json:"shard"`
	URL           string  `json:"url"`
	Requests      int64   `json:"requests"`
	Failures      int64   `json:"failures"`
	Hedges        int64   `json:"hedges"`
	QPS           float64 `json:"qps"`
	MeanLatencyUs float64 `json:"mean_latency_us"`
}

func (rt *Router) handleStatusz(w http.ResponseWriter, r *http.Request) {
	uptime := time.Since(rt.start)
	rows := make([]shardStatus, len(rt.backends))
	for i, b := range rt.backends {
		row := shardStatus{
			Shard:    i,
			URL:      b.base,
			Requests: b.requests.Load(),
			Failures: b.failures.Load(),
			Hedges:   b.hedges.Load(),
		}
		if up := uptime.Seconds(); up > 0 {
			row.QPS = float64(row.Requests) / up
		}
		if row.Requests > 0 {
			row.MeanLatencyUs = float64(b.latencyNs.Load()) / float64(row.Requests) / 1e3
		}
		rows[i] = row
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s":       uptime.Seconds(),
		"fail_open":      rt.failOpen,
		"hedge_delay_ms": float64(rt.hedgeDelay) / float64(time.Millisecond),
		"shards":         rows,
		"indexes":        rt.names,
	})
}

// routerIndexInfo is one row of the router's GET /v1/indexes: the merged
// view (total corpus size, per-shard generations) rather than any one
// shard's.
type routerIndexInfo struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	Space       string  `json:"space"`
	N           uint64  `json:"n"`
	Shards      int     `json:"shards"`
	Generations []int64 `json:"generations"`
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	infos := make([]routerIndexInfo, 0, len(rt.names))
	for _, name := range rt.names {
		ri := rt.indexes[name]
		infos = append(infos, routerIndexInfo{
			Name: name, Kind: ri.kind, Space: ri.space,
			N: ri.totalN, Shards: len(rt.backends), Generations: ri.generations,
		})
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{"indexes": infos})
}

func (rt *Router) handleSearch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ri := rt.indexes[name]
	if ri == nil {
		rt.writeError(w, http.StatusNotFound, fmt.Sprintf("no index %q", name))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	var req searchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed body: %v", err))
		return
	}
	if (req.Query == nil) == (len(req.Queries) == 0) {
		rt.writeError(w, http.StatusBadRequest, `body must carry exactly one of "query" or a non-empty "queries"`)
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.K < 0 {
		rt.writeError(w, http.StatusBadRequest, fmt.Sprintf("k must be positive, got %d", req.K))
		return
	}
	// Cap k at the full corpus size, exactly as the unsharded daemon does
	// (each shard additionally caps at its subset size on its own).
	if n := int(ri.totalN); req.K > n && n > 0 {
		req.K = n
	}
	numQueries := 1
	if req.Query == nil {
		numQueries = len(req.Queries)
	}

	// Scatter: the original body is forwarded verbatim — every shard
	// decodes the same queries and applies the same per-request params.
	ctx, cancel := context.WithTimeout(r.Context(), rt.timeout)
	defer cancel()
	payloads := make([]*shardPayload, len(rt.backends))
	errs := make([]error, len(rt.backends))
	var wg sync.WaitGroup
	for i, b := range rt.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			payloads[i], errs[i] = b.search(ctx, name, body)
		}(i, b)
	}
	wg.Wait()

	// Classify failures. A client-side rejection from any shard becomes
	// the router's own 400: the request is equally malformed everywhere.
	// A 200 of the wrong shape (a version-skewed or buggy backend) is a
	// shard failure, and its payload is dropped so the gather below can
	// neither index past a short batch nor silently merge a shard that
	// answered the wrong question — the daemon always marshals the
	// matching field non-nil ("results": [] for an empty answer), so a
	// nil field means the field was absent, not empty.
	var failed []int
	for i, err := range errs {
		if err == nil {
			wrongShape := payloads[i] == nil ||
				(req.Query != nil && payloads[i].Results == nil) ||
				(req.Query == nil && len(payloads[i].Batch) != numQueries)
			if wrongShape {
				errs[i] = &shardFailure{shard: i, msg: "protocol error: shard answered the wrong shape"}
				payloads[i] = nil
				failed = append(failed, i)
			}
			continue
		}
		if ce, ok := err.(*clientError); ok {
			rt.writeError(w, http.StatusBadRequest, ce.msg)
			return
		}
		failed = append(failed, i)
	}
	if len(failed) > 0 {
		for _, i := range failed {
			rt.log.Printf("router: %v", errs[i])
		}
		if !rt.failOpen || len(failed) == len(rt.backends) {
			rt.writeError(w, http.StatusBadGateway,
				fmt.Sprintf("%d/%d shards failed: %v", len(failed), len(rt.backends), errs[failed[0]]))
			return
		}
	}

	// Gather: canonical (dist, id) merge of the surviving shards.
	if req.Query != nil {
		parts := make([][]topk.Neighbor, 0, len(rt.backends))
		for _, p := range payloads {
			if p != nil {
				parts = append(parts, fromJSON(p.Results))
			}
		}
		merged, _ := mergeTopK(nil, req.K, parts)
		rt.writeJSON(w, http.StatusOK, &singleResponse{
			Index: name, K: req.K, Results: toJSON(merged),
			Partial: len(failed) > 0, FailedShards: failed,
		})
		return
	}
	batch := make([][]neighborJSON, numQueries)
	var buf []topk.Neighbor
	parts := make([][]topk.Neighbor, 0, len(rt.backends))
	for qi := 0; qi < numQueries; qi++ {
		parts = parts[:0]
		for _, p := range payloads {
			if p != nil {
				parts = append(parts, fromJSON(p.Batch[qi]))
			}
		}
		var merged []topk.Neighbor
		merged, buf = mergeTopK(buf, req.K, parts)
		batch[qi] = toJSON(merged)
	}
	rt.writeJSON(w, http.StatusOK, &batchResponse{
		Index: name, K: req.K, Batch: batch,
		Partial: len(failed) > 0, FailedShards: failed,
	})
}

// fromJSON converts wire neighbors to merge form.
func fromJSON(ns []neighborJSON) []topk.Neighbor {
	out := make([]topk.Neighbor, len(ns))
	for i, nb := range ns {
		out[i] = topk.Neighbor{ID: nb.ID, Dist: nb.Dist}
	}
	return out
}

// toJSON converts merged neighbors to the wire shape (non-nil, so empty
// results encode as [] exactly like the serving daemon).
func toJSON(ns []topk.Neighbor) []neighborJSON {
	out := make([]neighborJSON, len(ns))
	for i, nb := range ns {
		out[i] = neighborJSON{ID: nb.ID, Dist: nb.Dist}
	}
	return out
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		rt.log.Printf("router: writing response: %v", err)
	}
}

func (rt *Router) writeError(w http.ResponseWriter, status int, msg string) {
	rt.writeJSON(w, status, map[string]any{"error": msg, "status": status})
}
