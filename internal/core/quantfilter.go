package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/permutation"
	"repro/internal/scratch"
	"repro/internal/space"
	"repro/internal/topk"
	"repro/internal/vecmath"
)

// QuantFilterOptions configures NewQuantFilter.
type QuantFilterOptions struct {
	// NumPivots is the full permutation length m; ranks are quantized to
	// 4 bits relative to m. Default 64.
	NumPivots int
	// PrefixLen is the number of leading pivots kept in the quantized
	// signature. 16 lanes pack into one 64-bit word, so the default of 16
	// makes the filtering scan a single-word kernel per point. Clamped to
	// NumPivots.
	PrefixLen int
	// Gamma is the candidate fraction, as in BruteForceOptions.
	Gamma float64
	// Seed drives pivot sampling.
	Seed int64
}

func (o *QuantFilterOptions) defaults() {
	if o.NumPivots <= 0 {
		o.NumPivots = 64
	}
	if o.PrefixLen <= 0 {
		o.PrefixLen = 16
	}
	if o.PrefixLen > o.NumPivots {
		o.PrefixLen = o.NumPivots
	}
	if o.Gamma <= 0 {
		o.Gamma = 0.02
	}
}

// QuantFilter is brute-force filtering over 4-bit quantized permutation
// prefixes: each point stores the nibble-packed quantized ranks of its
// PrefixLen closest-indexed pivots and the filtering stage computes the
// Footrule distance between signatures with the SWAR absolute-difference
// kernel (vecmath.NibbleL1Word), 16 lanes per word. The signature sits
// between the paper's two extremes — full permutations (32 bits per rank,
// exact Footrule) and binarized sketches (1 bit per rank, Hamming): four
// bits per rank preserve enough rank geometry to filter well while the scan
// stays word-wise and cache-linear like the binary one.
type QuantFilter[T any] struct {
	sp      space.Space[T]
	data    []T
	pivots  *permutation.Pivots[T]
	words   int
	sigs    []uint64 // flattened n x words
	opts    QuantFilterOptions
	scratch scratch.Pool[quantScratch]
}

// quantScratch is the per-query state of one quantized filter search.
type quantScratch struct {
	perm  permutation.Scratch
	qsig  permutation.Quantized
	cands []topk.Neighbor
	queue topk.Queue
}

// NewQuantFilter samples pivots, computes permutations and quantizes their
// prefixes.
func NewQuantFilter[T any](sp space.Space[T], data []T, opts QuantFilterOptions) (*QuantFilter[T], error) {
	opts.defaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	if opts.NumPivots > len(data) {
		opts.NumPivots = len(data)
		if opts.PrefixLen > opts.NumPivots {
			opts.PrefixLen = opts.NumPivots
		}
	}
	r := rand.New(rand.NewSource(opts.Seed))
	pv, err := permutation.Sample(r, sp, data, opts.NumPivots)
	if err != nil {
		return nil, fmt.Errorf("core: sampling pivots: %w", err)
	}
	words := permutation.QuantizedWords(opts.PrefixLen)
	sigs := make([]uint64, len(data)*words)
	parallelFor(len(data), func(i int) {
		perm := pv.Permutation(data[i], nil)
		permutation.Quantize(perm, opts.PrefixLen, sigs[i*words:(i+1)*words])
	})
	return &QuantFilter[T]{sp: sp, data: data, pivots: pv, words: words, sigs: sigs, opts: opts}, nil
}

// Name implements index.Index.
func (f *QuantFilter[T]) Name() string { return "brute-force-filt-quant" }

// SetGamma adjusts the candidate fraction without rebuilding. Not safe to
// call concurrently with Search.
func (f *QuantFilter[T]) SetGamma(gamma float64) {
	if gamma > 0 {
		f.opts.Gamma = gamma
	}
}

// Gamma returns the current candidate fraction.
func (f *QuantFilter[T]) Gamma() float64 { return f.opts.Gamma }

// Stats implements index.Sized.
func (f *QuantFilter[T]) Stats() index.Stats {
	return index.Stats{
		Bytes:          int64(len(f.sigs)) * 8,
		BuildDistances: int64(len(f.data)) * int64(f.pivots.M()),
	}
}

// Search implements index.Index.
func (f *QuantFilter[T]) Search(query T, k int) []topk.Neighbor {
	return f.SearchAppend(nil, query, k)
}

// SearchAppend answers like Search but appends the results to dst; with a
// dst of sufficient capacity a warm call performs zero allocations.
func (f *QuantFilter[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	s := f.scratch.Get()
	defer f.scratch.Put(s)
	return f.search(s, nil, dst, query, k)
}

// NewSearcher implements index.SearcherProvider.
func (f *QuantFilter[T]) NewSearcher() index.Searcher[T] {
	return &searcher[T, quantScratch]{fn: f.search}
}

// search is the scratch-threaded hot path shared by Search, SearchAppend
// and Searchers.
func (f *QuantFilter[T]) search(s *quantScratch, tr *obs.QueryTrace, dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	if k <= 0 {
		return dst
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	qperm := f.pivots.PermutationWith(&s.perm, query)
	s.qsig = permutation.Quantize(qperm, f.opts.PrefixLen, s.qsig)
	n := len(f.data)
	g := gammaCount(f.opts.Gamma, n, k)

	cands := scratch.Grow(s.cands, n)
	s.cands = cands
	if f.words == 1 {
		// The default signature is a single word; keeping the word kernel
		// inlined in this flat loop is what puts the quantized scan ahead
		// of the binary one.
		q0 := s.qsig[0]
		for i := 0; i < n; i++ {
			d := vecmath.NibbleL1Word(q0, f.sigs[i])
			cands[i] = topk.Neighbor{ID: uint32(i), Dist: float64(d)}
		}
	} else {
		w := f.words
		for i := 0; i < n; i++ {
			d := vecmath.NibbleL1(s.qsig, f.sigs[i*w:(i+1)*w])
			cands[i] = topk.Neighbor{ID: uint32(i), Dist: float64(d)}
		}
	}
	if tr != nil {
		tr.FilterCandidates += int64(n)
		obs.AddSince(&tr.FilterNs, t0)
		t0 = time.Now()
	}
	best := topk.SelectK(cands, g)
	if tr != nil {
		obs.AddSince(&tr.MergeNs, t0)
	}
	return refineTopInto(f.sp, f.data, query, best, k, &s.queue, dst, tr)
}
