package permsearch_test

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	permsearch "repro"
)

// TestFacadeEndToEnd exercises the public API the way the README shows it:
// build each index over one small data set and check basic answer quality.
func TestFacadeEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	data := make([][]float32, 500)
	for i := range data {
		v := make([]float32, 16)
		base := float32(r.Intn(8) * 50)
		for j := range v {
			v[j] = base + float32(r.NormFloat64())
		}
		data[i] = v
	}
	query := data[17]

	scan := permsearch.NewSeqScan[[]float32](permsearch.L2{}, data)
	truth := scan.Search(query, 10)
	want := map[uint32]bool{}
	for _, n := range truth {
		want[n.ID] = true
	}
	check := func(name string, idx permsearch.Index[[]float32], minHits int) {
		t.Helper()
		res := idx.Search(query, 10)
		if len(res) == 0 {
			t.Fatalf("%s returned nothing", name)
		}
		hits := 0
		for _, n := range res {
			if want[n.ID] {
				hits++
			}
		}
		if hits < minHits {
			t.Errorf("%s: only %d/10 true neighbors", name, hits)
		}
	}

	napp, err := permsearch.NewNAPP[[]float32](permsearch.L2{}, data, permsearch.NAPPOptions{NumPivots: 64, NumPivotIndex: 16, MinShared: 1})
	if err != nil {
		t.Fatal(err)
	}
	check("napp", napp, 6)

	bf, err := permsearch.NewBruteForceFilter[[]float32](permsearch.L2{}, data, permsearch.BruteForceOptions{NumPivots: 32, Gamma: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	check("brute-force-filt", bf, 6)

	vt, err := permsearch.NewVPTree[[]float32](permsearch.L2{}, data, permsearch.VPTreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	check("vptree", vt, 10) // exact on a metric space

	g, err := permsearch.NewSWGraph[[]float32](permsearch.L2{}, data, permsearch.GraphOptions{NN: 8, InitAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	check("sw-graph", g, 6)

	h, err := permsearch.NewMPLSH(data, permsearch.MPLSHOptions{Tables: 12, Hashes: 8, Probes: 10})
	if err != nil {
		t.Fatal(err)
	}
	check("mplsh", h, 5)
}

func TestFacadeObjectConstructors(t *testing.T) {
	if _, err := permsearch.NewSparseVector([]int32{2, 1}, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	h := permsearch.NewHistogram([]float32{0.5, 0.5})
	if len(h.P) != 2 {
		t.Fatal("histogram broken")
	}
	if _, err := permsearch.NewSignature([]float32{1}, []float32{1, 2, 3}, 3); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeSearchBatch checks the batch entry points the package doc
// advertises: concurrent answers equal to the serial Search loop, on both
// the default and a bounded pool.
func TestFacadeSearchBatch(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	data := make([][]float32, 400)
	for i := range data {
		v := make([]float32, 12)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	db, queries := data[:360], data[360:]

	idx, err := permsearch.NewNAPP[[]float32](permsearch.L2{}, db, permsearch.NAPPOptions{
		NumPivots: 64, NumPivotIndex: 16, MinShared: 1, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]permsearch.Neighbor, len(queries))
	for i, q := range queries {
		want[i] = idx.Search(q, 10)
	}
	for name, got := range map[string][][]permsearch.Neighbor{
		"SearchBatch":        permsearch.SearchBatch[[]float32](idx, queries, 10),
		"SearchBatchWorkers": permsearch.SearchBatchWorkers[[]float32](idx, queries, 10, 3),
	} {
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s differs from serial Search loop", name)
		}
	}
	if n := permsearch.NewPool(3).Workers(); n != 3 {
		t.Fatalf("NewPool(3).Workers() = %d", n)
	}
}

// TestFacadeSaveLoadIndex exercises the persistence API the way the README
// shows it: save to a file, load back over the same space and data, get
// identical answers without rebuilding.
func TestFacadeSaveLoadIndex(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	data := make([][]float32, 300)
	for i := range data {
		v := make([]float32, 8)
		for j := range v {
			v[j] = float32(r.NormFloat64())
		}
		data[i] = v
	}
	idx, err := permsearch.NewNAPP[[]float32](permsearch.L2{}, data, permsearch.NAPPOptions{
		NumPivots: 64, NumPivotIndex: 16, MinShared: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "napp.psix")
	if err := permsearch.SaveIndexFile[[]float32](path, idx); err != nil {
		t.Fatal(err)
	}
	loaded, err := permsearch.LoadIndexFile(path, permsearch.L2{}, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][]float32{data[3], data[250]} {
		if got, want := loaded.Search(q, 10), idx.Search(q, 10); !reflect.DeepEqual(got, want) {
			t.Fatalf("loaded index answers differ: got %v, want %v", got, want)
		}
	}
	if kinds := permsearch.IndexKinds(); len(kinds) == 0 {
		t.Fatal("IndexKinds() is empty")
	}
	// Loading under the wrong space must fail loudly, not search wrongly.
	if _, err := permsearch.LoadIndexFile(path, permsearch.L1{}, data); err == nil {
		t.Fatal("LoadIndexFile accepted an L2-built index under L1")
	}
}
