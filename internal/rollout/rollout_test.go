package rollout_test

// End-to-end tests of the rollout control plane: real shard sets on disk
// (index files + sidecars + set manifest), a fleet of serving daemons with
// per-replica directories, a router for the golden gate, and a Driver
// shipping generations through — converging on success, rolling back on a
// recall regression, refusing corrupt bytes and generation skew, and
// skipping (only) dead replicas.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/persist"
	"repro/internal/rollout"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/space"
	"repro/internal/vptree"
)

const (
	roSet    = "dna"
	roN      = 120
	roShards = 2
	roSeed   = 7
)

// buildGen writes a complete shard set (index files, sidecars, set
// manifest) into dir: generation gen of the set, built over corpus
// gen(corpusSeed, roN). A different corpusSeed builds a set whose answers
// have nothing in common with the original — the "regressed rebuild" the
// golden gate must catch.
func buildGen(t *testing.T, dir string, gen int64, corpusSeed int64) (manifestPath string) {
	t.Helper()
	db := dataset.DNA(corpusSeed, roN, dataset.DNAOptions{})
	ids, err := shard.IDs(shard.Hash, len(db), roShards)
	if err != nil {
		t.Fatal(err)
	}
	m := &shard.SetManifest{
		Set: roSet, Dataset: "dna", Seed: corpusSeed, N: roN,
		Partitioner: shard.Hash, Generation: gen,
	}
	for s := range ids {
		tree, err := vptree.New[[]byte](space.NormalizedLevenshtein{}, shard.Subset(db, ids[s]), vptree.Options{Seed: roSeed})
		if err != nil {
			t.Fatal(err)
		}
		if m.Kind == "" {
			m.Kind = tree.Name()
		}
		sub := filepath.Join(dir, fmt.Sprintf("shard%d", s))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		file := filepath.Join(sub, roSet+persist.Ext)
		if err := persist.SaveFile(file, tree); err != nil {
			t.Fatal(err)
		}
		side := server.Manifest{
			Dataset: "dna", Seed: corpusSeed, N: roN, Generation: gen,
			Shard: &shard.Info{Set: roSet, Partitioner: shard.Hash, Shards: roShards, Index: s},
		}
		blob, err := json.Marshal(side)
		if err != nil {
			t.Fatal(err)
		}
		sidePath := filepath.Join(sub, roSet+".json")
		if err := os.WriteFile(sidePath, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		crc, err := shard.FileChecksum(file)
		if err != nil {
			t.Fatal(err)
		}
		m.Shards = append(m.Shards, shard.SetShard{
			Index: s, File: fmt.Sprintf("shard%d/%s%s", s, roSet, persist.Ext),
			Manifest: fmt.Sprintf("shard%d/%s.json", s, roSet), N: len(ids[s]), CRC32C: crc,
		})
	}
	path, err := shard.WriteSetManifest(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func copyInto(t *testing.T, dst, src string) {
	t.Helper()
	blob, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// fleet is a booted shards × replicas serving fleet plus the topology and
// router fronting it.
type fleet struct {
	topo    *rollout.Topology
	servers [][]*httptest.Server
	router  *httptest.Server
}

// bootFleet gives every replica its own serving directory seeded from the
// set at srcDir, serves each with a real daemon, and mounts a router over
// the lot.
func bootFleet(t *testing.T, srcDir string, replicas int) *fleet {
	t.Helper()
	f := &fleet{topo: &rollout.Topology{Schema: rollout.TopologySchema}}
	for s := 0; s < roShards; s++ {
		var group []rollout.Replica
		var servers []*httptest.Server
		for r := 0; r < replicas; r++ {
			dir := t.TempDir()
			copyInto(t, filepath.Join(dir, roSet+persist.Ext), filepath.Join(srcDir, fmt.Sprintf("shard%d", s), roSet+persist.Ext))
			copyInto(t, filepath.Join(dir, roSet+".json"), filepath.Join(srcDir, fmt.Sprintf("shard%d", s), roSet+".json"))
			reg, err := server.OpenDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(server.New(reg, server.Options{Workers: 2, Timeout: 30 * time.Second}).Handler())
			t.Cleanup(ts.Close)
			group = append(group, rollout.Replica{URL: ts.URL, Dir: dir})
			servers = append(servers, ts)
		}
		f.topo.Shards = append(f.topo.Shards, group)
		f.servers = append(f.servers, servers)
	}
	rt, err := router.New(router.Options{Replicas: f.topo.URLs(), ShardTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	f.router = httptest.NewServer(rt.Handler())
	t.Cleanup(f.router.Close)
	return f
}

// generationOf asks one replica which generation of the set it serves.
func generationOf(t *testing.T, base string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/indexes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Indexes []struct {
			Name       string `json:"name"`
			Generation int64  `json:"generation"`
		} `json:"indexes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	for _, row := range out.Indexes {
		if row.Name == roSet {
			return row.Generation
		}
	}
	t.Fatalf("replica %s does not serve %q", base, roSet)
	return 0
}

// driverFor builds a Driver with the golden gate wired through the fleet's
// router, with CI-friendly timeouts.
func driverFor(t *testing.T, f *fleet, goldenSeed int64) *rollout.Driver {
	t.Helper()
	queries, err := rollout.GoldenQueries("dna", goldenSeed, 8)
	if err != nil {
		t.Fatal(err)
	}
	d, err := rollout.New(rollout.Options{
		Topology:        f.topo,
		RouterURL:       f.router.URL,
		GoldenQueries:   queries,
		GoldenK:         5,
		MinRecall:       0.95,
		Timeout:         5 * time.Second,
		ConvergeTimeout: 10 * time.Second,
		PollInterval:    20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRolloutConverges: shipping a clean rebuild of the same corpus rolls
// every replica to the new generation, passes the golden gate (identical
// answers -> recall 1), and does not roll back.
func TestRolloutConverges(t *testing.T) {
	gen1 := t.TempDir()
	buildGen(t, gen1, 1, roSeed)
	f := bootFleet(t, gen1, 2)
	gen2 := t.TempDir()
	manifest2 := buildGen(t, gen2, 2, roSeed)

	rep, err := driverFor(t, f, roSeed).Rollout(manifest2)
	if err != nil {
		t.Fatalf("rollout failed: %v (report %+v)", err, rep)
	}
	if rep.RolledBack || len(rep.Updated) != roShards*2 || len(rep.Skipped) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Recall < 0.999 {
		t.Errorf("identical rebuild scored recall %v", rep.Recall)
	}
	for _, group := range f.servers {
		for _, ts := range group {
			if gen := generationOf(t, ts.URL); gen != 2 {
				t.Errorf("replica %s serves generation %d after rollout, want 2", ts.URL, gen)
			}
		}
	}
}

// TestRolloutRollsBackOnRegression is the acceptance bar: a generation
// built over the *wrong corpus* verifies byte-clean (the bytes are exactly
// what its manifest promises) but answers garbage — only the golden gate
// can catch it, and it must restore the fleet to the old generation.
func TestRolloutRollsBackOnRegression(t *testing.T) {
	gen1 := t.TempDir()
	buildGen(t, gen1, 1, roSeed)
	f := bootFleet(t, gen1, 2)
	gen2 := t.TempDir()
	manifest2 := buildGen(t, gen2, 2, 99) // regressed: different corpus

	// Golden queries come from the shipped manifest's corpus identity,
	// exactly as permctl derives them.
	rep, err := driverFor(t, f, 99).Rollout(manifest2)
	if err == nil {
		t.Fatalf("regressed rollout reported success: %+v", rep)
	}
	if !rep.RolledBack {
		t.Fatalf("regressed rollout did not roll back: %v (report %+v)", err, rep)
	}
	if !strings.Contains(rep.Reason, "recall") {
		t.Errorf("rollback reason %q does not name the recall gate", rep.Reason)
	}
	if rep.Recall >= 0.95 {
		t.Errorf("wrong-corpus generation scored recall %v", rep.Recall)
	}
	for _, group := range f.servers {
		for _, ts := range group {
			if gen := generationOf(t, ts.URL); gen != 1 {
				t.Errorf("replica %s serves generation %d after rollback, want 1", ts.URL, gen)
			}
		}
	}
}

// TestRolloutPreflight: corrupt bytes and generation skew are refused
// before anything ships — the fleet never sees a reload.
func TestRolloutPreflight(t *testing.T) {
	gen1 := t.TempDir()
	buildGen(t, gen1, 1, roSeed)
	f := bootFleet(t, gen1, 1)

	t.Run("corrupt shard file", func(t *testing.T) {
		gen2 := t.TempDir()
		manifest2 := buildGen(t, gen2, 2, roSeed)
		blob, err := os.ReadFile(filepath.Join(gen2, "shard0", roSet+persist.Ext))
		if err != nil {
			t.Fatal(err)
		}
		blob[len(blob)/2] ^= 0xFF
		if err := os.WriteFile(filepath.Join(gen2, "shard0", roSet+persist.Ext), blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := driverFor(t, f, roSeed).Rollout(manifest2); err == nil || !strings.Contains(err.Error(), "pre-flight") {
			t.Fatalf("corrupt shard file not refused in pre-flight: %v", err)
		}
	})

	t.Run("generation not newer", func(t *testing.T) {
		same := t.TempDir()
		manifest := buildGen(t, same, 1, roSeed) // fleet already serves generation 1
		_, err := driverFor(t, f, roSeed).Rollout(manifest)
		if err == nil || !strings.Contains(err.Error(), "generation skew") {
			t.Fatalf("non-newer generation not refused: %v", err)
		}
	})

	// Neither attempt may have touched the fleet.
	for _, group := range f.servers {
		for _, ts := range group {
			if gen := generationOf(t, ts.URL); gen != 1 {
				t.Errorf("replica %s serves generation %d after refused rollouts, want 1", ts.URL, gen)
			}
		}
	}
}

// TestRolloutSkipsDeadReplica: a dead replica is skipped with a warning
// (it catches up when it returns); a whole dead shard group aborts.
func TestRolloutSkipsDeadReplica(t *testing.T) {
	gen1 := t.TempDir()
	buildGen(t, gen1, 1, roSeed)
	f := bootFleet(t, gen1, 2)
	gen2 := t.TempDir()
	manifest2 := buildGen(t, gen2, 2, roSeed)

	dead := f.servers[0][1]
	dead.Close()

	rep, err := driverFor(t, f, roSeed).Rollout(manifest2)
	if err != nil {
		t.Fatalf("rollout with one dead replica failed: %v (report %+v)", err, rep)
	}
	if len(rep.Skipped) != 1 || rep.Skipped[0] != dead.URL {
		t.Fatalf("skipped = %v, want the dead replica %s", rep.Skipped, dead.URL)
	}
	if len(rep.Updated) != roShards*2-1 {
		t.Fatalf("updated = %v", rep.Updated)
	}
	for _, group := range f.servers {
		for _, ts := range group {
			if ts == dead {
				continue
			}
			if gen := generationOf(t, ts.URL); gen != 2 {
				t.Errorf("replica %s serves generation %d, want 2", ts.URL, gen)
			}
		}
	}

	// Kill shard 1 entirely: no safe way to roll it, so the driver aborts.
	f.servers[1][0].Close()
	f.servers[1][1].Close()
	gen3 := t.TempDir()
	manifest3 := buildGen(t, gen3, 3, roSeed)
	if _, err := driverFor(t, f, roSeed).Rollout(manifest3); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("whole dead shard not refused: %v", err)
	}
}

// TestRolloutEvents: the driver narrates a roll as structured per-step
// events — one update per reachable replica between survey and
// convergence on success, and a rollback/restore trail on regression.
func TestRolloutEvents(t *testing.T) {
	gen1 := t.TempDir()
	buildGen(t, gen1, 1, roSeed)
	f := bootFleet(t, gen1, 2)

	newDriver := func(goldenSeed int64, sink *[]rollout.Event) *rollout.Driver {
		queries, err := rollout.GoldenQueries("dna", goldenSeed, 8)
		if err != nil {
			t.Fatal(err)
		}
		d, err := rollout.New(rollout.Options{
			Topology:        f.topo,
			RouterURL:       f.router.URL,
			GoldenQueries:   queries,
			GoldenK:         5,
			Timeout:         5 * time.Second,
			ConvergeTimeout: 10 * time.Second,
			PollInterval:    20 * time.Millisecond,
			OnEvent:         func(e rollout.Event) { *sink = append(*sink, e) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	steps := func(events []rollout.Event) []string {
		var out []string
		for _, e := range events {
			out = append(out, e.Step)
		}
		return out
	}

	var events []rollout.Event
	manifest2 := buildGen(t, t.TempDir(), 2, roSeed)
	if _, err := newDriver(roSeed, &events).Rollout(manifest2); err != nil {
		t.Fatalf("rollout failed: %v", err)
	}
	want := []string{"preflight", "survey", "baseline",
		"update", "update", "update", "update", "converged", "verify", "done"}
	if got := steps(events); !slicesEqual(got, want) {
		t.Fatalf("event steps = %v, want %v", got, want)
	}
	for _, e := range events {
		if e.Set != roSet || e.Generation == 0 {
			t.Errorf("event %+v missing set/generation", e)
		}
		if e.Step == "update" && (e.URL == "" || e.Shard < 0 || e.Replica < 0 ||
			!strings.Contains(e.Detail, "generation 1 -> 2")) {
			t.Errorf("update event not attributed to a replica: %+v", e)
		}
		if e.Step == "verify" && e.Recall < 0.999 {
			t.Errorf("verify event recall = %v, want ~1 for an identical rebuild", e.Recall)
		}
	}

	// A regression narrates the rollback: verify, then rollback with the
	// reason, then one restore per updated replica.
	events = nil
	manifest3 := buildGen(t, t.TempDir(), 3, 99) // wrong corpus
	if _, err := newDriver(99, &events).Rollout(manifest3); err == nil {
		t.Fatal("regressed rollout reported success")
	}
	got := steps(events)
	want = []string{"preflight", "survey", "baseline",
		"update", "update", "update", "update", "converged", "verify",
		"rollback", "restore", "restore", "restore", "restore"}
	if !slicesEqual(got, want) {
		t.Fatalf("regression event steps = %v, want %v", got, want)
	}
	rb := events[len(want)-5]
	if !strings.Contains(rb.Err, "recall") {
		t.Errorf("rollback event error %q does not name the recall gate", rb.Err)
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTopologyRoundtrip: write/read identity plus validation rejections.
func TestTopologyRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	topo := &rollout.Topology{Shards: [][]rollout.Replica{
		{{URL: "http://a:1", Dir: "/srv/a"}, {URL: "http://b:1"}},
		{{URL: "http://c:1"}},
	}}
	if err := rollout.WriteTopology(path, topo); err != nil {
		t.Fatal(err)
	}
	back, err := rollout.ReadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Schema != rollout.TopologySchema || len(back.Shards) != 2 || back.Shards[0][0].Dir != "/srv/a" {
		t.Fatalf("roundtrip = %+v", back)
	}
	urls := back.URLs()
	if len(urls) != 2 || len(urls[0]) != 2 || urls[1][0] != "http://c:1" {
		t.Fatalf("URLs = %v", urls)
	}

	for name, bad := range map[string]*rollout.Topology{
		"no shards":     {Schema: rollout.TopologySchema},
		"empty group":   {Schema: rollout.TopologySchema, Shards: [][]rollout.Replica{{}}},
		"missing url":   {Schema: rollout.TopologySchema, Shards: [][]rollout.Replica{{{Dir: "/x"}}}},
		"duplicate url": {Schema: rollout.TopologySchema, Shards: [][]rollout.Replica{{{URL: "http://a:1"}, {URL: "http://a:1"}}}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: invalid topology accepted", name)
		}
	}
	if _, err := rollout.ReadTopology(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("reading a missing topology file succeeded")
	}
}

// TestGoldenQueries: deterministic, dataset-typed, and refusing datasets
// without a generator.
func TestGoldenQueries(t *testing.T) {
	a, err := rollout.GoldenQueries("dna", roSeed, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rollout.GoldenQueries("dna", roSeed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 4 {
		t.Fatalf("got %d queries", len(a))
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("query %d not deterministic: %s vs %s", i, a[i], b[i])
		}
	}
	var s string
	if err := json.Unmarshal(a[0], &s); err != nil || s == "" {
		t.Fatalf("dna query %s is not a JSON string: %v", a[0], err)
	}
	if v, err := rollout.GoldenQueries("sift", roSeed, 2); err != nil || len(v) != 2 {
		t.Fatalf("sift queries: %v", err)
	}
	if _, err := rollout.GoldenQueries("imagenet", roSeed, 2); err == nil {
		t.Error("unsupported dataset accepted")
	}
	if _, err := rollout.GoldenQueries("dna", roSeed, 0); err == nil {
		t.Error("zero query count accepted")
	}
}
