// Package permutation implements the core data structure of the paper: the
// representation of a data point as a *permutation* — the ranked list of a
// fixed pivot set, ordered by distance from the point (§2.1).
//
// Terminology used throughout this repository:
//
//   - The "order" of a point x is the sequence of pivot indices sorted by
//     increasing distance from x (closest pivot first). The PP-index,
//     MI-file and NAPP consume order prefixes.
//   - The "permutation" of x is the inverse of the order: perm[i] is the
//     0-based rank of pivot i among all pivots sorted by distance from x.
//     Spearman's rho and the Footrule compare permutations element-wise.
//
// Ties between equidistant pivots are broken toward the smaller pivot index,
// as in the paper.
package permutation

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"repro/internal/space"
	"repro/internal/vecmath"
)

// Pivots holds the m reference points of a permutation index together with
// the space they live in. Pivots are immutable once created and safe for
// concurrent use.
type Pivots[T any] struct {
	space space.Space[T]
	items []T
	// ids records, when the pivots were drawn from a data set (Sample,
	// FromIDs), the position of each pivot in that data set. Persistence
	// (internal/codec) stores these ids instead of the objects, keeping
	// the on-disk format object-type-agnostic. nil for explicit pivot
	// sets (NewPivots), which therefore cannot be persisted.
	ids []int32
}

// NewPivots wraps an explicit pivot list.
func NewPivots[T any](sp space.Space[T], items []T) (*Pivots[T], error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("permutation: empty pivot set")
	}
	cp := make([]T, len(items))
	copy(cp, items)
	return &Pivots[T]{space: sp, items: cp}, nil
}

// Sample selects m pivots uniformly at random (without replacement) from
// data, the standard pivot-selection strategy of the paper. It fails if the
// data set has fewer than m points.
func Sample[T any](r *rand.Rand, sp space.Space[T], data []T, m int) (*Pivots[T], error) {
	if m <= 0 {
		return nil, fmt.Errorf("permutation: pivot count m must be positive, got %d", m)
	}
	if m > len(data) {
		return nil, fmt.Errorf("permutation: cannot sample %d pivots from %d points", m, len(data))
	}
	idx := r.Perm(len(data))[:m]
	items := make([]T, m)
	ids := make([]int32, m)
	for i, j := range idx {
		items[i] = data[j]
		ids[i] = int32(j)
	}
	return &Pivots[T]{space: sp, items: items, ids: ids}, nil
}

// FromIDs reconstructs a pivot set from data-set positions, the inverse of
// SourceIDs. Index loaders use it to rebuild sampled pivots without ever
// serializing the pivot objects themselves.
func FromIDs[T any](sp space.Space[T], data []T, ids []int32) (*Pivots[T], error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("permutation: empty pivot id set")
	}
	items := make([]T, len(ids))
	cp := make([]int32, len(ids))
	for i, id := range ids {
		if id < 0 || int(id) >= len(data) {
			return nil, fmt.Errorf("permutation: pivot id %d out of range [0, %d)", id, len(data))
		}
		items[i] = data[id]
		cp[i] = id
	}
	return &Pivots[T]{space: sp, items: items, ids: cp}, nil
}

// SourceIDs returns the data-set position of each pivot when the set was
// sampled from a data set, or nil for explicit pivot sets (shared, do not
// mutate).
func (p *Pivots[T]) SourceIDs() []int32 { return p.ids }

// M returns the number of pivots.
func (p *Pivots[T]) M() int { return len(p.items) }

// Items returns the pivot objects (shared, do not mutate).
func (p *Pivots[T]) Items() []T { return p.items }

// Space returns the underlying distance space.
func (p *Pivots[T]) Space() space.Space[T] { return p.space }

// Distances computes the distance from x to every pivot, appending into dst
// (which may be nil). The point x is passed as the *data* (left) argument of
// the distance, matching the paper's left-query convention for asymmetric
// distances.
func (p *Pivots[T]) Distances(x T, dst []float64) []float64 {
	dst = dst[:0]
	for _, pv := range p.items {
		dst = append(dst, p.space.Distance(x, pv))
	}
	return dst
}

// Order computes the pivot order induced by x: dst[r] is the index of the
// (r+1)-th closest pivot. dst may be nil; the filled slice is returned.
// The intermediate distance buffer is allocated per call; hot paths use
// OrderWith with a reusable Scratch instead.
func (p *Pivots[T]) Order(x T, dst []int32) []int32 {
	dists := p.Distances(x, nil)
	return orderOf(dists, dst)
}

// Permutation computes the permutation induced by x: dst[i] is the 0-based
// rank of pivot i. dst may be nil; the filled slice is returned. Hot paths
// use PermutationWith with a reusable Scratch instead.
func (p *Pivots[T]) Permutation(x T, dst []int32) []int32 {
	order := p.Order(x, nil)
	return invert(order, dst)
}

// Scratch holds the per-query buffers of one goroutine's permutation
// computations: the pivot-distance vector plus the derived order and
// permutation. After the first few queries have grown the buffers to the
// pivot count, OrderWith and PermutationWith stop allocating entirely.
//
// A Scratch is single-goroutine state; the slices it hands out are
// invalidated by the next call on the same Scratch.
type Scratch struct {
	Dists []float64
	Order []int32
	Perm  []int32
}

// OrderWith computes the pivot order of x into s.Order (also returned),
// reusing s.Dists for the distance computation. Allocation-free once s has
// warmed up.
func (p *Pivots[T]) OrderWith(s *Scratch, x T) []int32 {
	s.Dists = p.Distances(x, s.Dists)
	s.Order = orderOf(s.Dists, s.Order)
	return s.Order
}

// PermutationWith computes the permutation of x into s.Perm (also
// returned), reusing s.Dists and s.Order. Allocation-free once s has warmed
// up.
func (p *Pivots[T]) PermutationWith(s *Scratch, x T) []int32 {
	s.Perm = invert(p.OrderWith(s, x), s.Perm)
	return s.Perm
}

// orderOf argsorts dists by (distance, index). The generic slices sort keeps
// it allocation-free when dst already has capacity.
func orderOf(dists []float64, dst []int32) []int32 {
	dst = dst[:0]
	for i := range dists {
		dst = append(dst, int32(i))
	}
	slices.SortFunc(dst, func(a, b int32) int {
		da, db := dists[a], dists[b]
		switch {
		case da < db:
			return -1
		case da > db:
			return 1
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	})
	return dst
}

// invert turns an order into a permutation (or vice versa: the inverse of a
// permutation is its order).
func invert(order []int32, dst []int32) []int32 {
	if cap(dst) < len(order) {
		dst = make([]int32, len(order))
	}
	dst = dst[:len(order)]
	for r, i := range order {
		dst[i] = int32(r)
	}
	return dst
}

// Invert returns the inverse of a permutation vector: applied to an order it
// yields the permutation, and applied to a permutation it yields the order.
func Invert(perm []int32) []int32 { return invert(perm, nil) }

// IsPermutation reports whether v contains each value 0..len(v)-1 exactly
// once.
func IsPermutation(v []int32) bool {
	seen := make([]bool, len(v))
	for _, x := range v {
		if x < 0 || int(x) >= len(v) || seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}

// SpearmanRho returns Spearman's rho distance between two permutations:
// the sum of squared rank differences (the squared L2 distance). Per §2.1
// this is the most effective permutation distance and the default in all
// permutation indexes here. The integer arithmetic happens in the
// width-dispatched vecmath kernel; results are exact, so every caller —
// including persisted indexes and recall goldens — sees identical values.
func SpearmanRho(a, b []int32) float64 {
	if len(a) != len(b) {
		panic("permutation: length mismatch")
	}
	return float64(vecmath.SpearmanRho(a, b))
}

// Footrule returns the Footrule distance between two permutations: the sum
// of absolute rank differences (the L1 distance).
func Footrule(a, b []int32) float64 {
	if len(a) != len(b) {
		panic("permutation: length mismatch")
	}
	return float64(vecmath.Footrule(a, b))
}

// RhoSpace exposes Spearman's rho as a space.Space over permutation vectors,
// so generic indexes (e.g. a VP-tree per Figueroa & Fredriksson, §2.3) can
// index permutations directly. Raw rho is the *squared* Euclidean distance
// and hence not a metric; see RhoMetric for the metric monotone transform.
type RhoSpace struct{}

// Distance implements space.Space.
func (RhoSpace) Distance(a, b []int32) float64 { return SpearmanRho(a, b) }

// Name implements space.Space.
func (RhoSpace) Name() string { return "spearman-rho" }

// Properties implements space.Space: symmetric, not a metric.
func (RhoSpace) Properties() space.Properties { return space.Properties{Symmetric: true} }

// RhoMetric is sqrt(SpearmanRho): the Euclidean distance between permutation
// vectors. It orders points identically to rho (monotone transform) but
// satisfies the triangle inequality, enabling metric pruning when indexing
// permutations with a VP-tree.
type RhoMetric struct{}

// Distance implements space.Space.
func (RhoMetric) Distance(a, b []int32) float64 { return math.Sqrt(SpearmanRho(a, b)) }

// Name implements space.Space.
func (RhoMetric) Name() string { return "spearman-rho-sqrt" }

// Properties implements space.Space: L2 over rank vectors is a metric.
func (RhoMetric) Properties() space.Properties {
	return space.Properties{Metric: true, Symmetric: true}
}

// FootruleSpace exposes the Footrule distance as a space.Space over
// permutation vectors. L1 over rank vectors is a metric.
type FootruleSpace struct{}

// Distance implements space.Space.
func (FootruleSpace) Distance(a, b []int32) float64 { return Footrule(a, b) }

// Name implements space.Space.
func (FootruleSpace) Name() string { return "footrule" }

// Properties implements space.Space.
func (FootruleSpace) Properties() space.Properties {
	return space.Properties{Metric: true, Symmetric: true}
}
