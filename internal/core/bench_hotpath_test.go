package core_test

// Hot-path microbenchmarks: steady-state Search cost per method over a warm
// index, with -benchmem accounting so the allocation trajectory (B/op,
// allocs/op) is tracked alongside ns/op. scripts/bench.sh runs these and
// emits the machine-readable BENCH_*.json consumed by the perf trajectory;
// keep names and sub-benchmark labels stable.
//
// The corpus is deliberately mid-sized (build stays in seconds) but large
// enough that per-query O(N) work — allocation, memset, full sorts — shows
// up clearly in the profile.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/router"
	"repro/internal/shard"
	"repro/internal/space"
)

const (
	benchN       = 10000
	benchQueries = 64
	benchK       = 10
	benchSeed    = 7
)

// benchCorpus returns the shared SIFT-like corpus split into db and held-out
// queries.
func benchCorpus() (db, queries [][]float32) {
	all := dataset.SIFT(benchSeed, benchN+benchQueries)
	return all[:benchN], all[benchN:]
}

// benchKinds builds the hot-path method matrix. Parameters follow the
// paper's defaults scaled down enough that every index builds in seconds.
func benchKinds(b *testing.B, sp space.Space[[]float32], db [][]float32) []struct {
	kind  string
	index index.Index[[]float32]
} {
	b.Helper()
	mk := func(kind string, idx index.Index[[]float32], err error) struct {
		kind  string
		index index.Index[[]float32]
	} {
		if err != nil {
			b.Fatalf("building %s: %v", kind, err)
		}
		return struct {
			kind  string
			index index.Index[[]float32]
		}{kind, idx}
	}
	napp, errNapp := core.NewNAPP(sp, db, core.NAPPOptions{
		NumPivots: 256, NumPivotIndex: 16, NumPivotSearch: 16, MinShared: 2, Seed: benchSeed,
	})
	nappCap, errNappCap := core.NewNAPP(sp, db, core.NAPPOptions{
		NumPivots: 256, NumPivotIndex: 16, NumPivotSearch: 16, MinShared: 1, MaxCandidates: 200, Seed: benchSeed,
	})
	mi, errMi := core.NewMIFile(sp, db, core.MIFileOptions{
		NumPivots: 128, NumPivotIndex: 32, NumPivotSearch: 16, MaxPosDiff: 8, Seed: benchSeed,
	})
	pp, errPp := core.NewPPIndex(sp, db, core.PPIndexOptions{
		NumPivots: 32, PrefixLen: 4, Copies: 2, Seed: benchSeed,
	})
	// The sharded serving topology, in process: the same NAPP settings
	// split over 3 hash shards behind a scatter-gather router.Local, so
	// the sharded-vs-unsharded QPS delta is tracked next to every other
	// hot-path number (the "napp" row is its unsharded twin).
	shardedNapp, errSharded := buildShardedNapp(sp, db, 3)
	bf, errBf := core.NewBruteForceFilter(sp, db, core.BruteForceOptions{NumPivots: 64, Seed: benchSeed})
	bin, errBin := core.NewBinFilter(sp, db, core.BinFilterOptions{NumPivots: 128, Seed: benchSeed})
	quant, errQuant := core.NewQuantFilter(sp, db, core.QuantFilterOptions{NumPivots: 64, Seed: benchSeed})
	dv, errDv := core.NewDistVecFilter(sp, db, core.BruteForceOptions{NumPivots: 64, Seed: benchSeed})
	om, errOm := core.NewOMEDRANK(sp, db, core.OMEDRANKOptions{NumVoters: 8, Seed: benchSeed})
	return []struct {
		kind  string
		index index.Index[[]float32]
	}{
		mk("napp", napp, errNapp),
		mk("napp-sharded3", shardedNapp, errSharded),
		mk("napp-capped", nappCap, errNappCap),
		mk("mi-file", mi, errMi),
		mk("pp-index", pp, errPp),
		mk("brute-force-filt", bf, errBf),
		mk("brute-force-filt-bin", bin, errBin),
		mk("brute-force-filt-quant", quant, errQuant),
		mk("distvec-filt", dv, errDv),
		mk("omedrank", om, errOm),
	}
}

// buildShardedNapp splits db into S hash shards, builds the benchmark NAPP
// per shard, and wraps them in a scatter-gather Local (GOMAXPROCS fan-out,
// like a serving process).
func buildShardedNapp(sp space.Space[[]float32], db [][]float32, S int) (index.Index[[]float32], error) {
	ids, err := shard.IDs(shard.Hash, len(db), S)
	if err != nil {
		return nil, err
	}
	shards := make([]router.LocalShard[[]float32], S)
	for s := range ids {
		idx, err := core.NewNAPP(sp, shard.Subset(db, ids[s]), core.NAPPOptions{
			NumPivots: 256, NumPivotIndex: 16, NumPivotSearch: 16, MinShared: 2, Seed: benchSeed,
		})
		if err != nil {
			return nil, err
		}
		shards[s] = router.LocalShard[[]float32]{Index: idx, IDs: ids[s]}
	}
	loc, err := router.NewLocal(shards, engine.NewPool(0))
	return index.Index[[]float32](loc), err
}

// BenchmarkSearchHot measures steady-state single-query Search on a warm
// index, cycling through held-out queries so no result is cache-trivial.
func BenchmarkSearchHot(b *testing.B) {
	db, queries := benchCorpus()
	sp := space.L2{}
	for _, kc := range benchKinds(b, sp, db) {
		b.Run(kc.kind, func(b *testing.B) {
			kc.index.Search(queries[0], benchK) // warm any lazy state
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				kc.index.Search(queries[i%len(queries)], benchK)
			}
		})
	}
}
