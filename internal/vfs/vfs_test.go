package vfs

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestIgnorableSyncDirError pins the "swallow only unsupported-here" policy:
// EINVAL and ENOTSUP (filesystems that reject directory fsync) are
// ignorable, including when wrapped the way os returns them; EIO and
// friends — real storage failures — are not.
func TestIgnorableSyncDirError(t *testing.T) {
	for _, err := range []error{
		syscall.EINVAL,
		syscall.ENOTSUP,
		fmt.Errorf("sync: %w", syscall.EINVAL),
		&os.PathError{Op: "sync", Path: "/d", Err: syscall.ENOTSUP},
	} {
		if !IgnorableSyncDirError(err) {
			t.Errorf("IgnorableSyncDirError(%v) = false, want true", err)
		}
	}
	for _, err := range []error{
		syscall.EIO,
		syscall.ENOSPC,
		syscall.EBADF,
		os.ErrClosed,
		fmt.Errorf("sync: %w", syscall.EIO),
	} {
		if IgnorableSyncDirError(err) {
			t.Errorf("IgnorableSyncDirError(%v) = true; a real I/O failure must propagate", err)
		}
	}
}

// TestOSSyncDir: syncing a real directory succeeds (possibly via the
// ignorable-error path on exotic filesystems), and a missing directory
// reports the open failure.
func TestOSSyncDir(t *testing.T) {
	dir := t.TempDir()
	if err := (OS{}).SyncDir(dir); err != nil {
		t.Fatalf("SyncDir(%s) = %v", dir, err)
	}
	if err := (OS{}).SyncDir(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("SyncDir of a missing directory reported success")
	}
}
