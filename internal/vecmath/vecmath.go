// Package vecmath provides low-level dense-vector arithmetic used by the
// distance functions in package space.
//
// The paper's C++ implementation uses hand-written SIMD (SSE/AVX) for L2 and
// sparse intersections. Go's standard toolchain exposes no intrinsics, so the
// loops here are 4-way unrolled instead: on modern CPUs the Go compiler turns
// these into reasonably tight scalar code, and the *relative* cost model of
// the paper (L2 cheap, JS-div ~10-20x L2, SQFD ~100x L2) is preserved, which
// is what the reproduced experiments depend on.
package vecmath

import "math"

// L2Sqr returns the squared Euclidean distance between a and b.
// It panics if the slices have different lengths.
func L2Sqr(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vecmath: length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b []float32) float64 {
	return math.Sqrt(L2Sqr(a, b))
}

// L1 returns the Manhattan distance between a and b.
// It panics if the slices have different lengths.
func L1(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vecmath: length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += math.Abs(float64(a[i]) - float64(b[i]))
		s1 += math.Abs(float64(a[i+1]) - float64(b[i+1]))
		s2 += math.Abs(float64(a[i+2]) - float64(b[i+2]))
		s3 += math.Abs(float64(a[i+3]) - float64(b[i+3]))
	}
	for ; i < len(a); i++ {
		s0 += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return s0 + s1 + s2 + s3
}

// Dot returns the inner product of a and b.
// It panics if the slices have different lengths.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vecmath: length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += float64(a[i]) * float64(b[i])
	}
	return s0 + s1 + s2 + s3
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float64 {
	var s float64
	for _, v := range a {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of a.
func Sum(a []float32) float64 {
	var s float64
	for _, v := range a {
		s += float64(v)
	}
	return s
}

// Scale multiplies every element of a by c, in place.
func Scale(a []float32, c float64) {
	for i := range a {
		a[i] = float32(float64(a[i]) * c)
	}
}

// Normalize scales a to unit Euclidean norm in place and returns the original
// norm. A zero vector is left unchanged and 0 is returned.
func Normalize(a []float32) float64 {
	n := Norm(a)
	if n == 0 {
		return 0
	}
	Scale(a, 1/n)
	return n
}

// NormalizeL1 scales a so its elements sum to one (a probability histogram)
// and returns the original sum. A zero vector is left unchanged.
func NormalizeL1(a []float32) float64 {
	s := Sum(a)
	if s == 0 {
		return 0
	}
	Scale(a, 1/s)
	return s
}

// Clone returns a copy of a.
func Clone(a []float32) []float32 {
	out := make([]float32, len(a))
	copy(out, a)
	return out
}

// Add stores a+b into dst. All three slices must have the same length.
func Add(dst, a, b []float32) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("vecmath: length mismatch")
	}
	for i := range a {
		dst[i] = a[i] + b[i]
	}
}

// AXPY computes dst += c*a element-wise.
func AXPY(dst []float32, c float64, a []float32) {
	if len(dst) != len(a) {
		panic("vecmath: length mismatch")
	}
	for i := range a {
		dst[i] += float32(c * float64(a[i]))
	}
}

// MinMax returns the smallest and largest element of a.
// It panics on an empty slice.
func MinMax(a []float32) (lo, hi float32) {
	if len(a) == 0 {
		panic("vecmath: empty slice")
	}
	lo, hi = a[0], a[0]
	for _, v := range a[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
