package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/permutation"
	"repro/internal/scratch"
	"repro/internal/space"
	"repro/internal/topk"
	"repro/internal/vecmath"
)

// DistVecFilter is the ablation counterpart of BruteForceFilter: instead of
// converting the vector of pivot distances into a permutation (rank vector),
// it keeps the raw distances and filters by L2 between distance vectors.
// §2.1 of the paper reports that the rank conversion — despite losing
// information — performs slightly *better*; this index exists so that claim
// can be re-verified (BenchmarkAblation_PermVsDistVec and the corresponding
// test).
type DistVecFilter[T any] struct {
	sp      space.Space[T]
	data    []T
	pivots  *permutation.Pivots[T]
	vecs    []float32 // flattened n x m raw distances
	opts    BruteForceOptions
	scratch scratch.Pool[dvScratch]
}

// dvScratch is the per-query state of one distance-vector filter search.
type dvScratch struct {
	qd    []float64
	qv    []float32
	cands []topk.Neighbor
	queue topk.Queue
}

// NewDistVecFilter samples pivots and stores raw pivot-distance vectors.
// The options are shared with BruteForceFilter; Dist is ignored (the filter
// always compares by L2 between distance vectors).
func NewDistVecFilter[T any](sp space.Space[T], data []T, opts BruteForceOptions) (*DistVecFilter[T], error) {
	opts.defaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	if opts.NumPivots > len(data) {
		opts.NumPivots = len(data)
	}
	r := rand.New(rand.NewSource(opts.Seed))
	pv, err := permutation.Sample(r, sp, data, opts.NumPivots)
	if err != nil {
		return nil, fmt.Errorf("core: sampling pivots: %w", err)
	}
	m := pv.M()
	vecs := make([]float32, len(data)*m)
	parallelFor(len(data), func(i int) {
		ds := pv.Distances(data[i], nil)
		for j, d := range ds {
			vecs[i*m+j] = float32(d)
		}
	})
	return &DistVecFilter[T]{sp: sp, data: data, pivots: pv, vecs: vecs, opts: opts}, nil
}

// Name implements index.Index.
func (f *DistVecFilter[T]) Name() string { return "distvec-filt" }

// Stats implements index.Sized.
func (f *DistVecFilter[T]) Stats() index.Stats {
	return index.Stats{
		Bytes:          int64(len(f.vecs)) * 4,
		BuildDistances: int64(len(f.data)) * int64(f.pivots.M()),
	}
}

// SetGamma adjusts the candidate fraction without rebuilding.
func (f *DistVecFilter[T]) SetGamma(gamma float64) {
	if gamma > 0 {
		f.opts.Gamma = gamma
	}
}

// Gamma returns the current candidate fraction.
func (f *DistVecFilter[T]) Gamma() float64 { return f.opts.Gamma }

// Search implements index.Index.
func (f *DistVecFilter[T]) Search(query T, k int) []topk.Neighbor {
	return f.SearchAppend(nil, query, k)
}

// SearchAppend answers like Search but appends the results to dst; with a
// dst of sufficient capacity a warm call performs zero allocations.
func (f *DistVecFilter[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	s := f.scratch.Get()
	defer f.scratch.Put(s)
	return f.search(s, nil, dst, query, k)
}

// NewSearcher implements index.SearcherProvider.
func (f *DistVecFilter[T]) NewSearcher() index.Searcher[T] {
	return &searcher[T, dvScratch]{fn: f.search}
}

// search is the scratch-threaded hot path shared by Search, SearchAppend
// and Searchers.
func (f *DistVecFilter[T]) search(s *dvScratch, tr *obs.QueryTrace, dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	if k <= 0 {
		return dst
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	m := f.pivots.M()
	s.qd = f.pivots.Distances(query, s.qd)
	qv := scratch.Grow(s.qv, m)
	s.qv = qv
	for j, d := range s.qd {
		qv[j] = float32(d)
	}
	n := len(f.data)
	g := gammaCount(f.opts.Gamma, n, k)
	cands := scratch.Grow(s.cands, n)
	s.cands = cands
	for i := 0; i < n; i++ {
		cands[i] = topk.Neighbor{
			ID:   uint32(i),
			Dist: vecmath.L2Sqr(qv, f.vecs[i*m:(i+1)*m]),
		}
	}
	if tr != nil {
		tr.FilterCandidates += int64(n)
		obs.AddSince(&tr.FilterNs, t0)
		t0 = time.Now()
	}
	best := topk.SelectK(cands, g)
	if tr != nil {
		obs.AddSince(&tr.MergeNs, t0)
	}
	return refineTopInto(f.sp, f.data, query, best, k, &s.queue, dst, tr)
}
