// Command figure4 regenerates the data behind Figure 4, the paper's main
// result: improvement in efficiency (brute-force time / method time) vs
// 10-NN recall, per method, per data set, averaged over random splits.
//
// Output columns: dataset, method, params, recall, improvement,
// query-time, qps, build-time, index-size.
//
// Usage:
//
//	figure4 [-n 5000] [-queries 100] [-folds 1] [-k 10] [-workers 1] [-datasets ...]
//	        [-save-index DIR] [-load-index DIR]
//
// -save-index / -load-index persist built indexes (internal/codec format)
// so repeated runs over the same seed/n/folds skip construction.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	n := flag.Int("n", 5000, "points per data set (the paper uses 1-5M)")
	queries := flag.Int("queries", 100, "query count per split")
	folds := flag.Int("folds", 1, "random splits (paper: 5)")
	k := flag.Int("k", 10, "neighbors per query")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "goroutines running evaluation queries (1 = single-thread protocol, -1 = GOMAXPROCS)")
	saveIndex := flag.String("save-index", "", "directory to persist every built index into (internal/codec format)")
	loadIndex := flag.String("load-index", "", "directory to warm-start indexes from, skipping construction when a matching file exists (same seed/n/folds required)")
	datasets := flag.String("datasets", "", "comma-separated subset (default: all nine)")
	flag.Parse()

	names := experiments.Names()
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}
	cfg := experiments.Config{N: *n, Queries: *queries, Folds: *folds, K: *k, Seed: *seed, Workers: *workers,
		SaveIndexDir: *saveIndex, LoadIndexDir: *loadIndex}
	fmt.Println("# Figure 4: dataset\tmethod\tparams\trecall\timprovement\tquery-time\tqps\tbuild-time\tindex-size")
	for _, name := range names {
		r, ok := experiments.Get(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "figure4: unknown dataset %q (known: %s)\n",
				name, strings.Join(experiments.Names(), ", "))
			os.Exit(2)
		}
		if err := r.Figure4(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "figure4: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
