package space

import (
	"math"
	"math/rand"
	"testing"
)

func TestCounterCounts(t *testing.T) {
	c := NewCounter[[]float32](L2{})
	if c.Count() != 0 {
		t.Fatalf("fresh counter = %d", c.Count())
	}
	a := []float32{1, 2}
	b := []float32{3, 4}
	c.Distance(a, b)
	c.Distance(a, b)
	if c.Count() != 2 {
		t.Fatalf("Count = %d, want 2", c.Count())
	}
	if c.Name() != "l2" {
		t.Fatalf("Name = %q", c.Name())
	}
	if !c.Properties().Metric {
		t.Fatal("Counter must forward Properties")
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatalf("after Reset Count = %d", c.Count())
	}
}

func TestL2L1Known(t *testing.T) {
	a := []float32{0, 0}
	b := []float32{3, 4}
	if d := (L2{}).Distance(a, b); math.Abs(d-5) > 1e-9 {
		t.Fatalf("L2 = %v, want 5", d)
	}
	if d := (L1{}).Distance(a, b); math.Abs(d-7) > 1e-9 {
		t.Fatalf("L1 = %v, want 7", d)
	}
}

// symmetryCheck exercises d(x,y)==d(y,x) for spaces that promise symmetry.
func symmetryCheck[T any](t *testing.T, sp Space[T], gen func(r *rand.Rand) T) {
	t.Helper()
	if !sp.Properties().Symmetric {
		t.Fatalf("%s: test requires symmetric space", sp.Name())
	}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		x, y := gen(r), gen(r)
		dxy, dyx := sp.Distance(x, y), sp.Distance(y, x)
		if math.Abs(dxy-dyx) > 1e-9*(1+dxy) {
			t.Fatalf("%s: asymmetric: %v vs %v", sp.Name(), dxy, dyx)
		}
	}
}

// identityCheck exercises d(x,x)==0 (within float tolerance).
func identityCheck[T any](t *testing.T, sp Space[T], gen func(r *rand.Rand) T) {
	t.Helper()
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		x := gen(r)
		if d := sp.Distance(x, x); d > 1e-6 {
			t.Fatalf("%s: d(x,x) = %v", sp.Name(), d)
		}
	}
}

// nonNegativityCheck exercises d(x,y) >= 0.
func nonNegativityCheck[T any](t *testing.T, sp Space[T], gen func(r *rand.Rand) T) {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		x, y := gen(r), gen(r)
		if d := sp.Distance(x, y); d < 0 {
			t.Fatalf("%s: negative distance %v", sp.Name(), d)
		}
	}
}

// triangleCheck exercises the triangle inequality for metric spaces.
func triangleCheck[T any](t *testing.T, sp Space[T], gen func(r *rand.Rand) T) {
	t.Helper()
	if !sp.Properties().Metric {
		t.Fatalf("%s: test requires metric space", sp.Name())
	}
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		x, y, z := gen(r), gen(r), gen(r)
		if sp.Distance(x, z) > sp.Distance(x, y)+sp.Distance(y, z)+1e-9 {
			t.Fatalf("%s: triangle inequality violated", sp.Name())
		}
	}
}

func genDense(dim int) func(r *rand.Rand) []float32 {
	return func(r *rand.Rand) []float32 {
		v := make([]float32, dim)
		for i := range v {
			v[i] = float32(r.NormFloat64())
		}
		return v
	}
}

func genSparse(r *rand.Rand) SparseVector {
	nnz := 1 + r.Intn(20)
	seen := map[int32]bool{}
	idx := make([]int32, 0, nnz)
	val := make([]float32, 0, nnz)
	for len(idx) < nnz {
		i := int32(r.Intn(1000))
		if seen[i] {
			continue
		}
		seen[i] = true
		idx = append(idx, i)
		val = append(val, float32(r.Float64()+0.01))
	}
	sv, err := NewSparseVector(idx, val)
	if err != nil {
		panic(err)
	}
	return sv
}

func genHistogram(dim int) func(r *rand.Rand) Histogram {
	return func(r *rand.Rand) Histogram {
		p := make([]float32, dim)
		for i := range p {
			p[i] = float32(r.Float64())
		}
		return NewHistogram(p)
	}
}

func genDNA(r *rand.Rand) []byte {
	letters := []byte("ACGT")
	n := 16 + r.Intn(32)
	s := make([]byte, n)
	for i := range s {
		s[i] = letters[r.Intn(4)]
	}
	return s
}

func genSignature(r *rand.Rand) Signature {
	nc := 2 + r.Intn(5)
	dim := 7
	w := make([]float32, nc)
	c := make([]float32, nc*dim)
	for i := range w {
		w[i] = float32(r.Float64() + 0.01)
	}
	for i := range c {
		c[i] = float32(r.NormFloat64())
	}
	sig, err := NewSignature(w, c, dim)
	if err != nil {
		panic(err)
	}
	return sig
}

func TestAxiomsDense(t *testing.T) {
	gen := genDense(16)
	for _, sp := range []Space[[]float32]{L2{}, L1{}} {
		symmetryCheck(t, sp, gen)
		identityCheck(t, sp, gen)
		nonNegativityCheck(t, sp, gen)
		triangleCheck(t, sp, gen)
	}
}

func TestAxiomsCosine(t *testing.T) {
	sp := CosineDistance{}
	symmetryCheck[SparseVector](t, sp, genSparse)
	identityCheck[SparseVector](t, sp, genSparse)
	nonNegativityCheck[SparseVector](t, sp, genSparse)
}

func TestAxiomsHistograms(t *testing.T) {
	gen := genHistogram(8)
	identityCheck[Histogram](t, KLDivergence{}, gen)
	nonNegativityCheck[Histogram](t, KLDivergence{}, gen)
	symmetryCheck[Histogram](t, JSDivergence{}, gen)
	identityCheck[Histogram](t, JSDivergence{}, gen)
	nonNegativityCheck[Histogram](t, JSDivergence{}, gen)
}

func TestAxiomsLevenshtein(t *testing.T) {
	symmetryCheck[[]byte](t, NormalizedLevenshtein{}, genDNA)
	identityCheck[[]byte](t, NormalizedLevenshtein{}, genDNA)
	nonNegativityCheck[[]byte](t, NormalizedLevenshtein{}, genDNA)
	triangleCheck[[]byte](t, Levenshtein{}, genDNA)
}

func TestAxiomsSQFD(t *testing.T) {
	symmetryCheck[Signature](t, SQFD{}, genSignature)
	identityCheck[Signature](t, SQFD{}, genSignature)
	nonNegativityCheck[Signature](t, SQFD{}, genSignature)
	triangleCheck[Signature](t, SQFD{}, genSignature)
}

func TestKLAsymmetry(t *testing.T) {
	// KL must be genuinely asymmetric on skewed histograms.
	x := NewHistogram([]float32{0.5, 0.5})
	y := NewHistogram([]float32{0.9, 0.1})
	kl := KLDivergence{}
	if math.Abs(kl.Distance(x, y)-kl.Distance(y, x)) < 1e-6 {
		t.Fatal("KL looks symmetric on skewed inputs; implementation suspect")
	}
	if kl.Properties().Symmetric {
		t.Fatal("KL must not claim symmetry")
	}
}

func TestKLKnownValue(t *testing.T) {
	// KL([1/2,1/2] || [1/4,3/4]) = 0.5 ln 2 + 0.5 ln(2/3)
	x := NewHistogram([]float32{0.5, 0.5})
	y := NewHistogram([]float32{0.25, 0.75})
	want := 0.5*math.Log(2) + 0.5*math.Log(2.0/3.0)
	if got := (KLDivergence{}).Distance(x, y); math.Abs(got-want) > 1e-5 {
		t.Fatalf("KL = %v, want %v", got, want)
	}
}

func TestJSBounded(t *testing.T) {
	// JS divergence is bounded by ln 2.
	r := rand.New(rand.NewSource(9))
	gen := genHistogram(32)
	for i := 0; i < 100; i++ {
		x, y := gen(r), gen(r)
		if d := (JSDivergence{}).Distance(x, y); d > math.Log(2)+1e-9 {
			t.Fatalf("JS = %v exceeds ln 2", d)
		}
	}
}

func TestHistogramFloorApplied(t *testing.T) {
	h := NewHistogram([]float32{0, 1})
	if h.P[0] <= 0 {
		t.Fatal("zero probability not floored")
	}
	var sum float64
	for _, v := range h.P {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("histogram not normalized: sum = %v", sum)
	}
}

func TestSparseVectorValidation(t *testing.T) {
	if _, err := NewSparseVector([]int32{1, 1}, []float32{1, 2}); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, err := NewSparseVector([]int32{1}, []float32{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewSparseVector([]int32{1}, []float32{float32(math.NaN())}); err == nil {
		t.Fatal("NaN accepted")
	}
	sv, err := NewSparseVector([]int32{5, 1, 3}, []float32{5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sv.Idx); i++ {
		if sv.Idx[i] <= sv.Idx[i-1] {
			t.Fatal("indices not sorted")
		}
	}
}

func TestSparseDotAgainstDense(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		dim := 1000 // genSparse draws indices in [0, 1000)
		da := make([]float64, dim)
		db := make([]float64, dim)
		a := genSparse(r)
		b := genSparse(r)
		for k, i := range a.Idx {
			da[i] = float64(a.Val[k])
		}
		for k, i := range b.Idx {
			db[i] = float64(b.Val[k])
		}
		var want float64
		for i := 0; i < dim; i++ {
			want += da[i] * db[i]
		}
		if got := SparseDot(a, b); math.Abs(got-want) > 1e-6 {
			t.Fatalf("SparseDot = %v, want %v", got, want)
		}
	}
}

func TestSparseDotGalloping(t *testing.T) {
	// Force the galloping path: one tiny vector against one large vector.
	r := rand.New(rand.NewSource(22))
	bigIdx := make([]int32, 1000)
	bigVal := make([]float32, 1000)
	for i := range bigIdx {
		bigIdx[i] = int32(i * 3)
		bigVal[i] = float32(r.Float64())
	}
	big, err := NewSparseVector(bigIdx, bigVal)
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewSparseVector([]int32{3, 300, 2997, 5000}, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := 1*float64(bigVal[1]) + 2*float64(bigVal[100]) + 3*float64(bigVal[999])
	if got := SparseDot(small, big); math.Abs(got-want) > 1e-6 {
		t.Fatalf("gallop dot = %v, want %v", got, want)
	}
	if got := SparseDot(big, small); math.Abs(got-want) > 1e-6 {
		t.Fatalf("gallop dot (swapped) = %v, want %v", got, want)
	}
}

func TestCosineOrthogonalAndParallel(t *testing.T) {
	a, _ := NewSparseVector([]int32{0}, []float32{2})
	b, _ := NewSparseVector([]int32{1}, []float32{3})
	c, _ := NewSparseVector([]int32{0}, []float32{7})
	cd := CosineDistance{}
	if d := cd.Distance(a, b); math.Abs(d-1) > 1e-9 {
		t.Fatalf("orthogonal cosine distance = %v, want 1", d)
	}
	if d := cd.Distance(a, c); d > 1e-9 {
		t.Fatalf("parallel cosine distance = %v, want 0", d)
	}
	var zero SparseVector
	if d := cd.Distance(a, zero); d != 1 {
		t.Fatalf("zero-vector distance = %v, want 1", d)
	}
}

func TestEditDistanceKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"ACGT", "ACGT", 0},
		{"ACGT", "AGGT", 1},
		{"AAAA", "TTTT", 4},
	}
	for _, c := range cases {
		if got := EditDistance([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestNormalizedLevenshteinRange(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	nl := NormalizedLevenshtein{}
	for i := 0; i < 200; i++ {
		a, b := genDNA(r), genDNA(r)
		d := nl.Distance(a, b)
		if d < 0 || d > 1 {
			t.Fatalf("normalized Levenshtein out of [0,1]: %v", d)
		}
	}
	if d := nl.Distance(nil, nil); d != 0 {
		t.Fatalf("empty-empty = %v", d)
	}
}

func TestSignatureValidation(t *testing.T) {
	if _, err := NewSignature([]float32{1}, []float32{1, 2}, 3); err == nil {
		t.Fatal("bad centroid count accepted")
	}
	if _, err := NewSignature([]float32{-1}, []float32{1, 2, 3}, 3); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewSignature([]float32{0}, []float32{1, 2, 3}, 3); err == nil {
		t.Fatal("zero-sum weights accepted")
	}
	if _, err := NewSignature([]float32{1}, []float32{1, 2, 3}, 0); err == nil {
		t.Fatal("zero dim accepted")
	}
	s, err := NewSignature([]float32{1, 3}, make([]float32, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(s.Weights[0])-0.25) > 1e-6 {
		t.Fatalf("weights not normalized: %v", s.Weights)
	}
	if s.Clusters() != 2 {
		t.Fatalf("Clusters = %d", s.Clusters())
	}
	if len(s.Centroid(1)) != 2 {
		t.Fatalf("Centroid view wrong length")
	}
}

func TestSQFDIdenticalCentroidsDifferentWeights(t *testing.T) {
	// Signatures over the same centroids reduce to a kernel distance on
	// the weight vectors; distance must be zero iff weights equal.
	c := []float32{0, 0, 1, 1} // two 2-d centroids
	a, _ := NewSignature([]float32{0.5, 0.5}, c, 2)
	b, _ := NewSignature([]float32{0.9, 0.1}, c, 2)
	d := (SQFD{}).Distance(a, b)
	if d <= 0 {
		t.Fatalf("distinct signatures at distance %v", d)
	}
}

func TestSQFDDimMismatchPanics(t *testing.T) {
	a, _ := NewSignature([]float32{1}, []float32{0, 0}, 2)
	b, _ := NewSignature([]float32{1}, []float32{0, 0, 0}, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	(SQFD{}).Distance(a, b)
}

func BenchmarkDistances(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	dense := genDense(128)
	x, y := dense(r), dense(r)
	h1, h2 := genHistogram(128)(r), genHistogram(128)(r)
	s1, s2 := genSparse(r), genSparse(r)
	d1, d2 := genDNA(r), genDNA(r)
	g1, g2 := genSignature(r), genSignature(r)

	b.Run("L2-128", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(L2{}).Distance(x, y)
		}
	})
	b.Run("KL-128", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(KLDivergence{}).Distance(h1, h2)
		}
	})
	b.Run("JS-128", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(JSDivergence{}).Distance(h1, h2)
		}
	})
	b.Run("Cosine-sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(CosineDistance{}).Distance(s1, s2)
		}
	})
	b.Run("NormLevenshtein", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(NormalizedLevenshtein{}).Distance(d1, d2)
		}
	})
	b.Run("SQFD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			(SQFD{}).Distance(g1, g2)
		}
	})
}
