package server

import (
	"encoding/json"
	"maps"
	"net/http"
	"net/http/httptest"
	"reflect"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/lsm"
	"repro/internal/seqscan"
	"repro/internal/space"
)

// End-to-end tests of the mutable serving tier: add/delete/flush over HTTP
// against a flat-scan oracle, write/reload exclusion, restart recovery, and
// a concurrency hammer. The oracle is the tentpole's acceptance criterion
// pushed through the full HTTP stack: a mutable entry must answer exactly
// like a single flat index over its live set.

const mutN = 60

// mutableFixtureDir writes one mutable index ("sift-mut": exact seqscan
// base over a small SIFT corpus) and returns its base vectors.
func mutableFixtureDir(t *testing.T) (string, [][]float32) {
	t.Helper()
	dir := t.TempDir()
	base := dataset.SIFT(e2eSeed, mutN)
	writeFixture(t, dir, "sift-mut", seqscan.New[[]float32](space.L2{}, base),
		Manifest{Dataset: "sift", Seed: e2eSeed, N: mutN, Mutable: true})
	return dir, base
}

// bootMutable opens dir keeping the Registry accessible so tests can close
// it (restart simulation) or reopen the same directory.
func bootMutable(t *testing.T, dir string) (*Registry, *httptest.Server) {
	t.Helper()
	reg, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{Workers: 4, Timeout: 30 * time.Second}).Handler())
	return reg, ts
}

// liveOracle is the flat-index ground truth: the live set as a plain map,
// searched by building a fresh exact scan over the objects in ascending id
// order (a monotone id translation, so the canonical (dist, id) tie order
// is preserved).
type liveOracle struct {
	objs map[uint32][]float32
}

func newLiveOracle(base [][]float32) *liveOracle {
	o := &liveOracle{objs: make(map[uint32][]float32, len(base))}
	for i, v := range base {
		o.objs[uint32(i)] = v
	}
	return o
}

func (o *liveOracle) add(id uint32, v []float32) { o.objs[id] = v }
func (o *liveOracle) del(id uint32)              { delete(o.objs, id) }

func (o *liveOracle) search(q []float32, k int) []neighborJSON {
	ids := slices.Sorted(maps.Keys(o.objs))
	vecs := make([][]float32, len(ids))
	for i, id := range ids {
		vecs[i] = o.objs[id]
	}
	nbs := seqscan.New[[]float32](space.L2{}, vecs).Search(q, k)
	out := make([]neighborJSON, len(nbs))
	for i, nb := range nbs {
		out[i] = neighborJSON{ID: ids[nb.ID], Dist: nb.Dist}
	}
	return out
}

// checkMutableIdentity asserts served answers equal the oracle's for a
// spread of ks, at a named stage of the mutation script.
func checkMutableIdentity(t *testing.T, ts *httptest.Server, name string, o *liveOracle, queries [][]float32, stage string) {
	t.Helper()
	url := ts.URL + "/v1/indexes/" + name + "/search"
	for _, k := range []int{1, 5, 30} {
		for qi, q := range queries {
			status, raw := postJSON(t, url, map[string]any{"query": q, "k": k})
			if status != http.StatusOK {
				t.Fatalf("%s: query %d k=%d: status %d: %s", stage, qi, k, status, raw)
			}
			var got singleResponse
			if err := json.Unmarshal(raw, &got); err != nil {
				t.Fatalf("%s: query %d: %v", stage, qi, err)
			}
			want := o.search(q, k)
			if !reflect.DeepEqual(got.Results, want) {
				t.Fatalf("%s: query %d k=%d:\nserved %v\noracle %v", stage, qi, k, got.Results, want)
			}
		}
	}
}

// mustAdd posts objects and returns the acknowledged ids.
func mustAdd(t *testing.T, ts *httptest.Server, name string, body any) []uint32 {
	t.Helper()
	status, raw := postJSON(t, ts.URL+"/v1/indexes/"+name+"/add", body)
	if status != http.StatusOK {
		t.Fatalf("add: status %d: %s", status, raw)
	}
	var resp struct {
		IDs []uint32 `json:"ids"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.IDs
}

func mustDelete(t *testing.T, ts *httptest.Server, name string, body any) {
	t.Helper()
	status, raw := postJSON(t, ts.URL+"/v1/indexes/"+name+"/delete", body)
	if status != http.StatusOK {
		t.Fatalf("delete: status %d: %s", status, raw)
	}
}

func mustFlush(t *testing.T, ts *httptest.Server, name string) {
	t.Helper()
	status, raw := postJSON(t, ts.URL+"/v1/indexes/"+name+"/flush", nil)
	if status != http.StatusOK {
		t.Fatalf("flush: status %d: %s", status, raw)
	}
}

func TestServedMutableAddDeleteFlushIdentity(t *testing.T) {
	dir, base := mutableFixtureDir(t)
	reg, ts := bootMutable(t, dir)
	defer reg.Close()
	defer ts.Close()

	oracle := newLiveOracle(base)
	queries := dataset.SIFT(e2eSeed+2, 6)
	extra := dataset.SIFT(e2eSeed+3, 30)

	checkMutableIdentity(t, ts, "sift-mut", oracle, queries, "pristine base")

	ids := mustAdd(t, ts, "sift-mut", map[string]any{"object": extra[0]})
	if len(ids) != 1 || ids[0] != mutN {
		t.Fatalf("first add assigned ids %v, want [%d]", ids, mutN)
	}
	oracle.add(ids[0], extra[0])

	batch := extra[1:25]
	ids = mustAdd(t, ts, "sift-mut", map[string]any{"objects": batch})
	if len(ids) != len(batch) {
		t.Fatalf("batch add acked %d ids for %d objects", len(ids), len(batch))
	}
	for i, id := range ids {
		oracle.add(id, batch[i])
	}
	checkMutableIdentity(t, ts, "sift-mut", oracle, queries, "after adds")

	mustDelete(t, ts, "sift-mut", map[string]any{"id": 5})
	oracle.del(5)
	mustDelete(t, ts, "sift-mut", map[string]any{"ids": []uint32{mutN + 1, mutN + 10, 2}})
	for _, id := range []uint32{mutN + 1, mutN + 10, 2} {
		oracle.del(id)
	}
	checkMutableIdentity(t, ts, "sift-mut", oracle, queries, "after deletes")

	mustFlush(t, ts, "sift-mut")
	checkMutableIdentity(t, ts, "sift-mut", oracle, queries, "after flush")

	ids = mustAdd(t, ts, "sift-mut", map[string]any{"objects": extra[25:]})
	for i, id := range ids {
		oracle.add(id, extra[25:][i])
	}
	mustDelete(t, ts, "sift-mut", map[string]any{"id": ids[0]})
	oracle.del(ids[0])
	// Deleting a tier-resident object after the seal exercises the
	// tombstone-masking path end to end.
	mustDelete(t, ts, "sift-mut", map[string]any{"id": mutN + 2})
	oracle.del(mutN + 2)
	checkMutableIdentity(t, ts, "sift-mut", oracle, queries, "post-seal churn")
}

func TestServedWriteEndpointErrors(t *testing.T) {
	dir, base := mutableFixtureDir(t)
	writeFixture(t, dir, "sift-ro", seqscan.New[[]float32](space.L2{}, base),
		Manifest{Dataset: "sift", Seed: e2eSeed, N: mutN})
	reg, ts := bootMutable(t, dir)
	defer reg.Close()
	defer ts.Close()

	vec := dataset.SIFT(e2eSeed+4, 1)[0]
	cases := []struct {
		name string
		url  string
		body any
		want int
	}{
		{"add to immutable index", "/v1/indexes/sift-ro/add", map[string]any{"object": vec}, http.StatusConflict},
		{"add to unknown index", "/v1/indexes/nope/add", map[string]any{"object": vec}, http.StatusNotFound},
		{"add without object", "/v1/indexes/sift-mut/add", map[string]any{}, http.StatusBadRequest},
		{"add with object and objects", "/v1/indexes/sift-mut/add", map[string]any{"object": vec, "objects": [][]float32{vec}}, http.StatusBadRequest},
		{"add undecodable object", "/v1/indexes/sift-mut/add", map[string]any{"object": "not a vector"}, http.StatusBadRequest},
		{"delete unknown id", "/v1/indexes/sift-mut/delete", map[string]any{"id": 99999}, http.StatusBadRequest},
		{"delete duplicate ids", "/v1/indexes/sift-mut/delete", map[string]any{"ids": []uint32{3, 3}}, http.StatusBadRequest},
		{"delete without id", "/v1/indexes/sift-mut/delete", map[string]any{}, http.StatusBadRequest},
		{"flush immutable index", "/v1/indexes/sift-ro/flush", nil, http.StatusConflict},
	}
	for _, tc := range cases {
		status, raw := postJSON(t, ts.URL+tc.url, tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d, want %d: %s", tc.name, status, tc.want, raw)
		}
	}

	// A rejected batch must reject atomically: id 3 was named twice above,
	// so it must still be live (a search for its own vector finds it).
	status, raw := postJSON(t, ts.URL+"/v1/indexes/sift-mut/search", map[string]any{"query": base[3], "k": 1})
	if status != http.StatusOK {
		t.Fatalf("search: status %d: %s", status, raw)
	}
	var got singleResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0].ID != 3 || got.Results[0].Dist != 0 {
		t.Fatalf("object 3 not intact after rejected delete batch: %v", got.Results)
	}
}

func TestServedReloadRefusedUntilFlush(t *testing.T) {
	dir, _ := mutableFixtureDir(t)
	reg, ts := bootMutable(t, dir)
	defer reg.Close()
	defer ts.Close()

	vec := dataset.SIFT(e2eSeed+5, 1)[0]
	ids := mustAdd(t, ts, "sift-mut", map[string]any{"object": vec})

	status, raw := postJSON(t, ts.URL+"/v1/indexes/sift-mut/reload", nil)
	if status != http.StatusConflict {
		t.Fatalf("reload with unsealed writes: status %d, want 409: %s", status, raw)
	}
	if !strings.Contains(string(raw), "unsealed") {
		t.Fatalf("reload refusal should say why: %s", raw)
	}

	mustFlush(t, ts, "sift-mut")
	status, raw = postJSON(t, ts.URL+"/v1/indexes/sift-mut/reload", nil)
	if status != http.StatusOK {
		t.Fatalf("reload after flush: status %d: %s", status, raw)
	}

	// The tree is entry state: the acknowledged write must still be served
	// by the new snapshot generation.
	status, raw = postJSON(t, ts.URL+"/v1/indexes/sift-mut/search", map[string]any{"query": vec, "k": 1})
	if status != http.StatusOK {
		t.Fatalf("search after reload: status %d: %s", status, raw)
	}
	var got singleResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0].ID != ids[0] || got.Results[0].Dist != 0 {
		t.Fatalf("added object lost across reload: %v", got.Results)
	}
}

func TestServedMutableSurvivesRestart(t *testing.T) {
	dir, base := mutableFixtureDir(t)
	reg, ts := bootMutable(t, dir)

	extra := dataset.SIFT(e2eSeed+6, 12)
	ids := mustAdd(t, ts, "sift-mut", map[string]any{"objects": extra[:6]})
	mustDelete(t, ts, "sift-mut", map[string]any{"id": ids[2]})
	mustFlush(t, ts, "sift-mut")
	// A second, unflushed round: recovery must replay these from the WAL.
	mustAdd(t, ts, "sift-mut", map[string]any{"objects": extra[6:]})
	mustDelete(t, ts, "sift-mut", map[string]any{"ids": []uint32{7, ids[0]}})

	queries := append(dataset.SIFT(e2eSeed+7, 4), base[7], extra[0], extra[9])
	record := func(ts *httptest.Server) []string {
		var out []string
		for _, q := range queries {
			status, raw := postJSON(t, ts.URL+"/v1/indexes/sift-mut/search", map[string]any{"query": q, "k": 10})
			if status != http.StatusOK {
				t.Fatalf("search: status %d: %s", status, raw)
			}
			out = append(out, string(raw))
		}
		return out
	}
	before := record(ts)

	ts.Close()
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2, ts2 := bootMutable(t, dir)
	defer reg2.Close()
	defer ts2.Close()
	after := record(ts2)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("query %d changed across restart:\nbefore %s\nafter  %s", i, before[i], after[i])
		}
	}
}

// TestServedMutableReloadHammer races adders, flushers, reloaders and
// searchers. Every response must be 200 or 409 (never a hang, 5xx, or torn
// state), and every 200-acknowledged add must be searchable afterwards.
func TestServedMutableReloadHammer(t *testing.T) {
	dir, _ := mutableFixtureDir(t)
	reg, ts := bootMutable(t, dir)
	defer reg.Close()
	defer ts.Close()

	// Each acked vector is unique and far from the base corpus (base
	// coordinates live in [0, 255]), so its self-query at k=1 must return
	// exactly its own id at distance 0.
	farVec := func(n int) []float32 {
		v := make([]float32, 128)
		v[0] = float32(10000 + n)
		return v
	}

	var mu sync.Mutex
	acked := make(map[uint32][]float32)

	var adders, chaosG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		adders.Add(1)
		go func(w int) {
			defer adders.Done()
			for i := 0; i < 30; i++ {
				v := farVec(w*1000 + i)
				status, raw := postJSON(t, ts.URL+"/v1/indexes/sift-mut/add", map[string]any{"object": v})
				switch status {
				case http.StatusOK:
					var resp struct {
						IDs []uint32 `json:"ids"`
					}
					if err := json.Unmarshal(raw, &resp); err != nil || len(resp.IDs) != 1 {
						t.Errorf("adder %d: bad ack %s: %v", w, raw, err)
						return
					}
					mu.Lock()
					acked[resp.IDs[0]] = v
					mu.Unlock()
				case http.StatusConflict:
					// Reload in flight; the write was refused whole.
				default:
					t.Errorf("adder %d: status %d: %s", w, status, raw)
					return
				}
			}
		}(w)
	}
	chaos := func(path string) {
		defer chaosG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			status, raw := postJSON(t, ts.URL+path, nil)
			if status != http.StatusOK && status != http.StatusConflict {
				t.Errorf("%s: status %d: %s", path, status, raw)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	chaosG.Add(2)
	go chaos("/v1/indexes/sift-mut/flush")
	go chaos("/v1/indexes/sift-mut/reload")
	chaosG.Add(1)
	go func() {
		defer chaosG.Done()
		q := farVec(500)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			status, raw := postJSON(t, ts.URL+"/v1/indexes/sift-mut/search", map[string]any{"query": q, "k": 5})
			if status != http.StatusOK {
				t.Errorf("searcher: status %d: %s", status, raw)
				return
			}
		}
	}()

	// Adders run a fixed script; the chaos loops run until they finish.
	adders.Wait()
	close(stop)
	chaosG.Wait()

	mu.Lock()
	final := maps.Clone(acked)
	mu.Unlock()
	if len(final) == 0 {
		t.Fatal("no adds were acknowledged during the hammer")
	}
	for id, v := range final {
		status, raw := postJSON(t, ts.URL+"/v1/indexes/sift-mut/search", map[string]any{"query": v, "k": 1})
		if status != http.StatusOK {
			t.Fatalf("post-hammer search: status %d: %s", status, raw)
		}
		var got singleResponse
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != 1 || got.Results[0].ID != id || got.Results[0].Dist != 0 {
			t.Fatalf("acked add %d not served: %v", id, got.Results)
		}
	}
}

func TestServedStatuszReportsMutableTiers(t *testing.T) {
	dir, _ := mutableFixtureDir(t)
	reg, ts := bootMutable(t, dir)
	defer reg.Close()
	defer ts.Close()

	extra := dataset.SIFT(e2eSeed+8, 5)
	mustAdd(t, ts, "sift-mut", map[string]any{"objects": extra[:3]})
	mustFlush(t, ts, "sift-mut")
	mustAdd(t, ts, "sift-mut", map[string]any{"objects": extra[3:]})

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Indexes []struct {
			Name    string      `json:"name"`
			Mutable *lsm.Status `json:"mutable"`
		} `json:"indexes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	var row *lsm.Status
	for _, r := range status.Indexes {
		if r.Name == "sift-mut" {
			row = r.Mutable
		}
	}
	if row == nil {
		t.Fatalf("statusz has no mutable section for sift-mut: %+v", status.Indexes)
	}
	if row.Live != mutN+5 {
		t.Errorf("statusz live = %d, want %d", row.Live, mutN+5)
	}
	if len(row.Tiers) != 1 || row.Tiers[0].N != 3 {
		t.Errorf("statusz tiers = %+v, want one tier of 3", row.Tiers)
	}
	if row.MemtableLive != 2 || row.WalRecords != 2 {
		t.Errorf("statusz memtable = %d live / %d wal records, want 2/2", row.MemtableLive, row.WalRecords)
	}
}
