// Package permsearch is the public facade of this repository: a Go
// implementation of the permutation-based approximate k-nearest-neighbor
// search methods surveyed in
//
//	Naidan, Boytsov, Nyberg.
//	"Permutation Search Methods are Efficient, Yet Faster Search is
//	Possible." PVLDB 8(12), 2015.
//
// and of every baseline the paper evaluates them against: sequential scan,
// multi-probe LSH, VP-trees with metric and polynomial pruning, and
// proximity graphs built with Small-World insertion or NN-descent.
//
// # Quick start
//
//	data := dataset // your []T
//	idx, err := permsearch.NewNAPP[[]float32](permsearch.L2{}, data, permsearch.NAPPOptions{})
//	if err != nil { ... }
//	neighbors := idx.Search(query, 10)
//
// Every index implements Index[T]: Search returns ids (positions into the
// data slice) with distances, nearest first. All filter-and-refine methods
// (brute-force filtering, PP-index, MI-file, NAPP, OMEDRANK, permutation
// VP-tree) take a gamma-style candidate budget; see the option structs.
//
// # Batch search
//
// For throughput-oriented workloads, SearchBatch fans a slab of queries out
// over a worker pool against any index:
//
//	results := permsearch.SearchBatch(idx, queries, 10)          // GOMAXPROCS workers
//	results := permsearch.SearchBatchWorkers(idx, queries, 10, 4) // bounded pool
//
// results[i] is always exactly what idx.Search(queries[i], 10) would have
// returned in a serial loop — parallelism never changes answers, only
// wall-clock time. The evaluation tools expose the same engine through
// their -workers flag (e.g. cmd/annbench).
//
// # Persistence
//
// Every index can be saved to a versioned, checksummed binary file and
// loaded back ready to search, skipping construction (and all of its
// distance computations) entirely:
//
//	err := permsearch.SaveIndex(f, idx)
//	idx, err := permsearch.LoadIndex(f, permsearch.L2{}, data) // same space + data
//
// The format stores derived structure only — pivot ids, posting lists, tree
// nodes — never the data objects, so loading requires the same data slice
// the index was built over (verified via the header). A loaded index
// answers every query identically to the saved one. See internal/codec for
// the format and versioning policy.
//
// # Spaces
//
// A Space[T] is any (possibly non-metric) dissimilarity; implementations
// for the paper's seven distances ship in this package: L2, L1 (dense
// vectors), CosineDistance (sparse vectors), KLDivergence and JSDivergence
// (topic histograms), NormalizedLevenshtein (byte strings) and SQFD (image
// signatures). For non-symmetric distances the data point is always the
// left argument ("left queries", §3.3 of the paper).
package permsearch

import (
	"io"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/knngraph"
	"repro/internal/lsh"
	"repro/internal/permutation"
	"repro/internal/persist"
	"repro/internal/seqscan"
	"repro/internal/space"
	"repro/internal/topk"
	"repro/internal/vptree"
)

// Core result and interface types.
type (
	// Neighbor is one search answer: a data id and its distance.
	Neighbor = topk.Neighbor
	// Index is the interface satisfied by every search structure here.
	Index[T any] = index.Index[T]
	// Searcher is a single-goroutine query handle owning reusable scratch:
	// its SearchAppend answers with zero steady-state allocations when the
	// caller recycles the result buffer. Mint one per worker goroutine via
	// SearcherProvider (every permutation index implements it).
	Searcher[T any] = index.Searcher[T]
	// SearcherProvider is implemented by indexes that can mint Searchers.
	SearcherProvider[T any] = index.SearcherProvider[T]
	// Space is a (possibly non-metric) dissimilarity over T.
	Space[T any] = space.Space[T]
	// Properties reports which distance axioms a space satisfies.
	Properties = space.Properties
)

// Object types for the paper's non-vector spaces.
type (
	// SparseVector is a sorted sparse vector (cosine distance).
	SparseVector = space.SparseVector
	// Histogram is a probability histogram with precomputed logs
	// (KL/JS divergence).
	Histogram = space.Histogram
	// Signature is an SQFD image signature.
	Signature = space.Signature
)

// Distance functions (see package space for details).
type (
	// L2 is the Euclidean metric over dense vectors.
	L2 = space.L2
	// L1 is the Manhattan metric over dense vectors.
	L1 = space.L1
	// CosineDistance is 1 - cosine similarity over sparse vectors.
	CosineDistance = space.CosineDistance
	// KLDivergence is the (non-symmetric) Kullback-Leibler divergence.
	KLDivergence = space.KLDivergence
	// JSDivergence is the Jensen-Shannon divergence.
	JSDivergence = space.JSDivergence
	// NormalizedLevenshtein is edit distance over max length.
	NormalizedLevenshtein = space.NormalizedLevenshtein
	// SQFD is the Signature Quadratic Form Distance.
	SQFD = space.SQFD
)

// Pool is a bounded worker pool, the concurrency substrate shared by batch
// search and parallel index construction. The zero value runs at GOMAXPROCS.
type Pool = engine.Pool

// NewPool returns a pool of at most workers goroutines (<= 0: GOMAXPROCS).
func NewPool(workers int) Pool { return engine.NewPool(workers) }

// SearchBatch answers a batch of queries concurrently on a GOMAXPROCS-wide
// pool. results[i] is exactly what idx.Search(queries[i], k) would return
// in a serial loop; ordering is deterministic regardless of scheduling.
func SearchBatch[T any](idx Index[T], queries []T, k int) [][]Neighbor {
	return engine.SearchBatch(idx, queries, k)
}

// SearchBatchWorkers is SearchBatch on a pool bounded to workers goroutines
// (<= 0 means GOMAXPROCS).
func SearchBatchWorkers[T any](idx Index[T], queries []T, k, workers int) [][]Neighbor {
	return engine.SearchBatchPool(engine.NewPool(workers), idx, queries, k)
}

// SaveIndex serializes any index built by this package to w in the
// versioned, checksummed binary format of internal/codec. Indexes built
// over explicit (caller-supplied, non-sampled) pivot sets cannot be
// persisted and return an error.
func SaveIndex[T any](w io.Writer, idx Index[T]) error {
	return persist.Save(w, idx)
}

// LoadIndex reads one index from r and reconstructs it over sp and data,
// which must be the space and data set the index was saved with. The
// concrete index type is selected by the file's kind tag (see IndexKinds);
// the result is ready to Search.
func LoadIndex[T any](r io.Reader, sp Space[T], data []T) (Index[T], error) {
	return persist.Load(r, sp, data)
}

// SaveIndexFile is SaveIndex to a file path (created or truncated, fsynced).
func SaveIndexFile[T any](path string, idx Index[T]) error {
	return persist.SaveFile(path, idx)
}

// LoadIndexFile is LoadIndex from a file path.
func LoadIndexFile[T any](path string, sp Space[T], data []T) (Index[T], error) {
	return persist.LoadFile(path, sp, data)
}

// IndexHeader describes a persisted index file: its kind tag, the name of
// the space it was built under, the format version and the data-set size.
type IndexHeader = codec.Header

// ReadIndexHeader returns the header of the index file at path without
// reconstructing the index, so callers can decide which space and data to
// load it over (or list a directory's contents cheaply).
func ReadIndexHeader(path string) (IndexHeader, error) {
	return persist.PeekHeader(path)
}

// LoadIndexSet opens every index file (*.psix) in dir over one shared
// (space, data) pair, returning ready indexes keyed by file name without
// the extension — the warm-start path for serving processes that hold
// several index structures over the same corpus. Any file that fails to
// load or mismatches sp/data aborts the whole set.
func LoadIndexSet[T any](dir string, sp Space[T], data []T) (map[string]Index[T], error) {
	return persist.LoadIndexSet(dir, sp, data)
}

// IndexKinds lists the kind tags of every persistable index family, in the
// order of the internal registry.
func IndexKinds() []string { return persist.Kinds() }

// NewSparseVector validates and sorts a sparse vector.
func NewSparseVector(idx []int32, val []float32) (SparseVector, error) {
	return space.NewSparseVector(idx, val)
}

// NewHistogram floors, normalizes and log-precomputes a histogram.
func NewHistogram(p []float32) Histogram { return space.NewHistogram(p) }

// NewSignature validates and normalizes an SQFD signature.
func NewSignature(weights, centroids []float32, dim int) (Signature, error) {
	return space.NewSignature(weights, centroids, dim)
}

// Option structs of the permutation methods (package core).
type (
	// BruteForceOptions configures brute-force permutation filtering.
	BruteForceOptions = core.BruteForceOptions
	// BinFilterOptions configures binarized permutation filtering.
	BinFilterOptions = core.BinFilterOptions
	// QuantFilterOptions configures 4-bit quantized-prefix filtering.
	QuantFilterOptions = core.QuantFilterOptions
	// PPIndexOptions configures the Permutation Prefix Index.
	PPIndexOptions = core.PPIndexOptions
	// MIFileOptions configures the Metric Inverted File.
	MIFileOptions = core.MIFileOptions
	// NAPPOptions configures the Neighborhood APProximation index.
	NAPPOptions = core.NAPPOptions
	// OMEDRANKOptions configures Fagin et al.'s rank aggregation.
	OMEDRANKOptions = core.OMEDRANKOptions
	// PermVPTreeOptions configures VP-tree-indexed permutations.
	PermVPTreeOptions = core.PermVPTreeOptions
	// VPTreeOptions configures the VP-tree baseline.
	VPTreeOptions = vptree.Options
	// GraphOptions configures proximity-graph construction and search.
	GraphOptions = knngraph.Options
	// MPLSHOptions configures multi-probe LSH.
	MPLSHOptions = lsh.Options
)

// NewBruteForceFilter builds the §2.2 brute-force permutation filter.
func NewBruteForceFilter[T any](sp Space[T], data []T, opts BruteForceOptions) (*core.BruteForceFilter[T], error) {
	return core.NewBruteForceFilter(sp, data, opts)
}

// NewBinFilter builds the binarized (bit-packed, Hamming) filter.
func NewBinFilter[T any](sp Space[T], data []T, opts BinFilterOptions) (*core.BinFilter[T], error) {
	return core.NewBinFilter(sp, data, opts)
}

// NewQuantFilter builds the 4-bit quantized permutation-prefix filter:
// nibble-packed rank signatures scanned with a SWAR Footrule kernel.
func NewQuantFilter[T any](sp Space[T], data []T, opts QuantFilterOptions) (*core.QuantFilter[T], error) {
	return core.NewQuantFilter(sp, data, opts)
}

// NewPPIndex builds Esuli's Permutation Prefix Index.
func NewPPIndex[T any](sp Space[T], data []T, opts PPIndexOptions) (*core.PPIndex[T], error) {
	return core.NewPPIndex(sp, data, opts)
}

// NewMIFile builds Amato & Savino's Metric Inverted File.
func NewMIFile[T any](sp Space[T], data []T, opts MIFileOptions) (*core.MIFile[T], error) {
	return core.NewMIFile(sp, data, opts)
}

// NewNAPP builds Tellez et al.'s Neighborhood APProximation index.
func NewNAPP[T any](sp Space[T], data []T, opts NAPPOptions) (*core.NAPP[T], error) {
	return core.NewNAPP(sp, data, opts)
}

// NewOMEDRANK builds Fagin et al.'s median-rank aggregation baseline.
func NewOMEDRANK[T any](sp Space[T], data []T, opts OMEDRANKOptions) (*core.OMEDRANK[T], error) {
	return core.NewOMEDRANK(sp, data, opts)
}

// NewPermVPTree indexes permutations in a VP-tree (Figueroa & Fredriksson).
func NewPermVPTree[T any](sp Space[T], data []T, opts PermVPTreeOptions) (*core.PermVPTree[T], error) {
	return core.NewPermVPTree(sp, data, opts)
}

// NewVPTree builds the VP-tree baseline (exact for metric spaces at
// alpha=1; polynomial pruner for generic spaces).
func NewVPTree[T any](sp Space[T], data []T, opts VPTreeOptions) (*vptree.Tree[T], error) {
	return vptree.New(sp, data, opts)
}

// TuneVPTree grid-searches the pruning stretch alpha for a recall target.
func TuneVPTree[T any](sp Space[T], sample, queries []T, k int, targetRecall float64, opts VPTreeOptions) (alpha, recall float64, err error) {
	return vptree.Tune(sp, sample, queries, k, targetRecall, opts)
}

// NewSWGraph builds a Small-World proximity graph (Malkov et al.).
func NewSWGraph[T any](sp Space[T], data []T, opts GraphOptions) (*knngraph.Graph[T], error) {
	return knngraph.NewSW(sp, data, opts)
}

// NewNNDescentGraph builds a k-NN graph with NN-descent (Dong et al.).
func NewNNDescentGraph[T any](sp Space[T], data []T, opts GraphOptions) (*knngraph.Graph[T], error) {
	return knngraph.NewNNDescent(sp, data, opts)
}

// NewMPLSH builds the multi-probe LSH baseline (dense vectors, L2 only).
func NewMPLSH(data [][]float32, opts MPLSHOptions) (*lsh.MPLSH, error) {
	return lsh.New(data, opts)
}

// NewSeqScan builds the exact sequential-scan baseline.
func NewSeqScan[T any](sp Space[T], data []T) *seqscan.Scanner[T] {
	return seqscan.New(sp, data)
}

// Pivots is the pivot set of a permutation index, exposed for users who
// want to compute permutations directly (see package permutation for
// sampling, orders, rho/footrule/Kendall distances and binarization).
type Pivots[T any] = permutation.Pivots[T]
