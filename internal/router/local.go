package router

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/topk"
)

// LocalShard is one in-memory shard: an index built over a corpus subset
// plus the subset's global ids. IDs[i] is the corpus-global id of the
// shard-local id i and must be strictly increasing (internal/shard.IDs
// produces exactly this) — a monotone map keeps a (dist, local-id) ordered
// result list ordered by (dist, global-id) after translation. A nil IDs
// means the shard already answers in global ids (the S=1 degenerate case).
type LocalShard[T any] struct {
	Index index.Index[T]
	IDs   []uint32
}

// Local scatter-gathers over in-memory shard indexes: the same partition,
// id-translation and merge semantics as the HTTP front tier (Router), with
// the sockets cut out. It exists so the merge logic is unit-testable
// against every registered index kind without a daemon, and so the sharded
// query path can sit directly in benchmarks and the evaluation harness
// (annbench -shards) next to its unsharded counterpart.
//
// Local implements index.Index[T]; Search scatters one query across all
// shards on the pool and merges. It also implements
// index.SearcherProvider[T]: a minted Searcher queries the shards serially
// through their own per-worker Searchers, so the whole sharded path keeps
// the zero-steady-state-allocation property of the underlying indexes
// (guarded in internal/core/alloc_test.go style by this package's tests).
type Local[T any] struct {
	shards []LocalShard[T]
	pool   engine.Pool
	name   string
}

// NewLocal builds a scatter-gather view over shards. The pool bounds the
// per-query fan-out concurrency of Search (a zero pool runs at GOMAXPROCS).
func NewLocal[T any](shards []LocalShard[T], pool engine.Pool) (*Local[T], error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("router: no shards")
	}
	for i, s := range shards {
		if s.Index == nil {
			return nil, fmt.Errorf("router: shard %d has no index", i)
		}
	}
	return &Local[T]{
		shards: shards,
		pool:   pool,
		name:   fmt.Sprintf("%s-sharded%d", shards[0].Index.Name(), len(shards)),
	}, nil
}

// Name implements index.Index: the underlying method tagged with the shard
// count, e.g. "napp-sharded3".
func (l *Local[T]) Name() string { return l.name }

// Shards returns the shard count.
func (l *Local[T]) Shards() int { return len(l.shards) }

// Stats implements index.Sized: the summed footprint of the shard indexes
// plus the id-translation tables.
func (l *Local[T]) Stats() index.Stats {
	var st index.Stats
	for _, sh := range l.shards {
		if sized, ok := sh.Index.(index.Sized); ok {
			s := sized.Stats()
			st.Bytes += s.Bytes
			st.BuildDistances += s.BuildDistances
		}
		st.Bytes += int64(len(sh.IDs)) * 4
	}
	return st
}

// translate rewrites a shard-local result list to global ids in place.
func translate(ns []topk.Neighbor, ids []uint32) {
	if ids == nil {
		return
	}
	for i := range ns {
		ns[i].ID = ids[ns[i].ID]
	}
}

// Search implements index.Index: scatter the query to every shard over the
// pool, translate ids, merge canonically.
func (l *Local[T]) Search(query T, k int) []topk.Neighbor {
	if k <= 0 {
		return nil
	}
	parts := make([][]topk.Neighbor, len(l.shards))
	l.pool.For(len(l.shards), func(s int) {
		ns := l.shards[s].Index.Search(query, k)
		translate(ns, l.shards[s].IDs)
		parts[s] = ns
	})
	merged, _ := mergeTopK(nil, k, parts)
	return merged
}

// NewSearcher implements index.SearcherProvider. The searcher holds one
// sub-searcher per shard (for shards whose index provides them; others fall
// back to plain Search) plus a reusable merge buffer, and must not be
// shared between goroutines.
func (l *Local[T]) NewSearcher() index.Searcher[T] {
	s := &localSearcher[T]{l: l, subs: make([]index.Searcher[T], len(l.shards))}
	for i, sh := range l.shards {
		if sp, ok := sh.Index.(index.SearcherProvider[T]); ok {
			s.subs[i] = sp.NewSearcher()
		}
	}
	return s
}

// localSearcher is the per-worker query handle of a Local: shards are
// probed serially (the worker is the unit of parallelism, as everywhere
// else on the query hot path), results land in one reusable buffer, and
// the canonical merge happens in place.
type localSearcher[T any] struct {
	l    *Local[T]
	subs []index.Searcher[T] // nil where the shard index mints none
	buf  []topk.Neighbor
	tr   *obs.QueryTrace
}

// SetTrace implements obs.Traceable: the trace is propagated to every
// traceable sub-searcher, so shard probes attribute their own filter/refine
// stages while the merge time lands here. Setting nil detaches everywhere.
func (s *localSearcher[T]) SetTrace(tr *obs.QueryTrace) {
	s.tr = tr
	for _, sub := range s.subs {
		if tt, ok := sub.(obs.Traceable); ok {
			tt.SetTrace(tr)
		}
	}
}

var _ obs.Traceable = (*localSearcher[[]float32])(nil)

// Search implements index.Searcher.
func (s *localSearcher[T]) Search(query T, k int) []topk.Neighbor {
	return s.SearchAppend(nil, query, k)
}

// SearchAppend implements index.Searcher: with a dst of sufficient capacity
// and sub-searchers on every shard, a warm call performs zero allocations.
func (s *localSearcher[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	if k <= 0 {
		return dst
	}
	s.buf = s.buf[:0]
	for i, sh := range s.l.shards {
		start := len(s.buf)
		if sub := s.subs[i]; sub != nil {
			s.buf = sub.SearchAppend(s.buf, query, k)
		} else {
			s.buf = append(s.buf, sh.Index.Search(query, k)...)
		}
		translate(s.buf[start:], sh.IDs)
	}
	var mergeStart time.Time
	if s.tr != nil {
		mergeStart = time.Now()
	}
	merged := topk.SelectK(s.buf, k)
	if s.tr != nil {
		s.tr.MergeNs += time.Since(mergeStart).Nanoseconds()
	}
	return append(dst, merged...)
}
