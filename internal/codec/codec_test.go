package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"strings"
	"testing"
)

// rechecksum rewrites the CRC-32C trailer over a patched blob, so tests can
// reach validation layers behind the checksum.
func rechecksum(blob []byte) {
	body := blob[:len(blob)-4]
	binary.LittleEndian.PutUint32(blob[len(blob)-4:], crc32.Checksum(body, castagnoli))
}

// roundtripBlob writes one value of every primitive through a Writer and
// returns the blob.
func roundtripBlob(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw := NewWriter(&buf, KindNAPP, "l2", 42)
	cw.U8(7)
	cw.Bool(true)
	cw.U16(65535)
	cw.U32(1 << 30)
	cw.U64(1 << 60)
	cw.I32(-12345)
	cw.I64(-1 << 40)
	cw.Int(987654)
	cw.F64(math.Pi)
	cw.F32(2.5)
	cw.U32s([]uint32{1, 2, 3})
	cw.I32s([]int32{-1, 0, 1})
	cw.U64s([]uint64{9, 8})
	cw.F32s([]float32{0.5})
	cw.F64s([]float64{-0.25, 4})
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestPrimitivesRoundtrip(t *testing.T) {
	cr, err := NewReader(bytes.NewReader(roundtripBlob(t)))
	if err != nil {
		t.Fatal(err)
	}
	hdr := cr.Header()
	if hdr.Version != Version || hdr.Kind != KindNAPP || hdr.Space != "l2" || hdr.N != 42 {
		t.Fatalf("header = %+v", hdr)
	}
	if err := cr.Expect(KindNAPP, "l2", 42); err != nil {
		t.Fatalf("Expect on matching context: %v", err)
	}
	if got := cr.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !cr.Bool() {
		t.Error("Bool = false")
	}
	if got := cr.U16(); got != 65535 {
		t.Errorf("U16 = %d", got)
	}
	if got := cr.U32(); got != 1<<30 {
		t.Errorf("U32 = %d", got)
	}
	if got := cr.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := cr.I32(); got != -12345 {
		t.Errorf("I32 = %d", got)
	}
	if got := cr.I64(); got != -1<<40 {
		t.Errorf("I64 = %d", got)
	}
	if got := cr.Int(); got != 987654 {
		t.Errorf("Int = %d", got)
	}
	if got := cr.F64(); got != math.Pi {
		t.Errorf("F64 = %g", got)
	}
	if got := cr.F32(); got != 2.5 {
		t.Errorf("F32 = %g", got)
	}
	if got := cr.U32s(); len(got) != 3 || got[2] != 3 {
		t.Errorf("U32s = %v", got)
	}
	if got := cr.I32s(); len(got) != 3 || got[0] != -1 {
		t.Errorf("I32s = %v", got)
	}
	if got := cr.U64s(); len(got) != 2 || got[0] != 9 {
		t.Errorf("U64s = %v", got)
	}
	if got := cr.F32s(); len(got) != 1 || got[0] != 0.5 {
		t.Errorf("F32s = %v", got)
	}
	if got := cr.F64s(); len(got) != 2 || got[1] != 4 {
		t.Errorf("F64s = %v", got)
	}
	if err := cr.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestExpectMismatches(t *testing.T) {
	blob := roundtripBlob(t)
	cr, err := NewReader(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if err := cr.Expect(KindVPTree, "l2", 42); err == nil {
		t.Error("Expect accepted the wrong kind")
	}
	if err := cr.Expect(KindNAPP, "l1", 42); err == nil {
		t.Error("Expect accepted the wrong space")
	}
	if err := cr.Expect(KindNAPP, "l2", 41); err == nil {
		t.Error("Expect accepted the wrong data size")
	}
}

func TestCorruptionDetection(t *testing.T) {
	blob := roundtripBlob(t)

	// Every single-byte flip must be rejected by the checksum.
	for pos := range blob {
		mut := bytes.Clone(blob)
		mut[pos] ^= 0x01
		if _, err := NewReader(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: got %v, want ErrCorrupt", pos, err)
		}
	}
	// Every truncation must be rejected too.
	for cut := 0; cut < len(blob); cut++ {
		if _, err := NewReader(bytes.NewReader(blob[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: got %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestUnconsumedPayloadFailsFinish(t *testing.T) {
	cr, err := NewReader(bytes.NewReader(roundtripBlob(t)))
	if err != nil {
		t.Fatal(err)
	}
	if err := cr.Finish(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Finish with unread payload: got %v, want ErrCorrupt", err)
	}
}

// TestLengthCap asserts a declared slice length larger than the remaining
// payload fails before allocation: the error path, not an OOM, must handle
// it. The blob is rebuilt with a valid checksum so only the length check
// can reject it.
func TestLengthCap(t *testing.T) {
	var buf bytes.Buffer
	cw := NewWriter(&buf, KindSeqScan, "l2", 1)
	cw.U64(1 << 62) // slice "length" with no elements behind it
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	cr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := cr.U32s(); got != nil {
		t.Errorf("U32s returned %d elements off a bogus length", len(got))
	}
	if err := cr.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// TestTagCap asserts oversized header strings are rejected.
func TestTagCap(t *testing.T) {
	var buf bytes.Buffer
	cw := NewWriter(&buf, strings.Repeat("x", maxTagLen+1), "l2", 0)
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt for oversized kind tag", err)
	}
}

// TestVersionRejected asserts a future format version fails cleanly. The
// version field sits right after the 4-byte magic; patching it invalidates
// the checksum, so the trailer is recomputed the same way the writer does.
func TestVersionRejected(t *testing.T) {
	blob := roundtripBlob(t)
	mut := bytes.Clone(blob)
	mut[4] = byte(Version + 1)
	rechecksum(mut)
	_, err := NewReader(bytes.NewReader(mut))
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("got %v, want ErrUnsupportedVersion", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatal("a version mismatch must not read as corruption (warm starts rebuild on it)")
	}
}
