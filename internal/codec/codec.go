// Package codec implements the on-disk format shared by every index in this
// repository. The paper's pipeline rebuilds each index from scratch on every
// run; persisting the built structure lets a benchmark (or a serving
// process) construct once and warm-start many times, paying only the load
// cost instead of the full set of construction distance computations.
//
// # Format
//
// A persisted index is a single binary blob:
//
//	offset 0  magic   "PSIX" (4 bytes)
//	          version uint16, little-endian (currently 2)
//	          kind    length-prefixed UTF-8 string (the index.Name tag,
//	                  e.g. "napp" or "sw-graph")
//	          space   length-prefixed UTF-8 string (space.Space.Name of the
//	                  distance the index was built under)
//	          n       uint64, number of data points the index was built over
//	          payload kind-specific sections (see the persist.go file of
//	                  each index package)
//	trailer   crc32c  uint32 Castagnoli checksum of every preceding byte
//
// All integers are little-endian. Variable-length sections are
// length-prefixed; lengths are validated against the number of bytes
// actually remaining in the blob before any allocation, so a corrupted or
// adversarial length can never cause an out-of-memory allocation (see
// FuzzLoad).
//
// # Versioning policy
//
// Version is bumped whenever the header or any kind payload changes
// incompatibly. Readers reject versions they do not know; there is no
// in-place migration — an index saved by an old build is simply rebuilt
// from the data. The raw data objects are deliberately NOT part of the
// format: an index file is a companion to the data set it was built from
// (loaders receive the same data slice and verify its length and space
// name), which keeps the format object-type-agnostic — one codec serves
// dense vectors, sparse vectors, histograms, strings and SQFD signatures
// alike. Pivot sets are stored as ids into the data slice, never as
// serialized objects.
package codec

import (
	"errors"
	"fmt"
)

// Magic is the 4-byte file signature.
const Magic = "PSIX"

// Version is the current format version, bumped on incompatible changes.
// Version 2 added a tombstone section to the "seqscan" payload (so a scanner
// with dynamic deletions round-trips) and the "lsm-segment" kind.
const Version = 2

// Kind tags, one per persistable index family. The tag doubles as the
// index's report name (index.Index.Name), so a file is self-describing.
const (
	KindBruteForce  = "brute-force-filt"
	KindBinFilter   = "brute-force-filt-bin"
	KindQuantFilter = "brute-force-filt-quant"
	KindDistVec     = "distvec-filt"
	KindPPIndex     = "pp-index"
	KindMIFile      = "mi-file"
	KindNAPP        = "napp"
	KindOMEDRANK    = "omedrank"
	KindPermVPTree  = "perm-vptree"
	KindVPTree      = "vptree"
	KindMPLSH       = "mplsh"
	KindSWGraph     = "sw-graph"
	KindNNDescent   = "nndescent-graph"
	KindSeqScan     = "seqscan"
)

// KindLSMSegment tags a sealed LSM tier segment (internal/lsm): the raw
// objects, global ids and tombstones of one sealed memtable generation. It is
// not an index kind — segments carry the objects an index file cannot — so it
// is absent from Kinds() and not loadable through the internal/persist
// registry; internal/lsm decodes it directly.
const KindLSMSegment = "lsm-segment"

// Kinds lists every kind tag the registry (internal/persist) can load, in a
// fixed report order.
func Kinds() []string {
	return []string{
		KindBruteForce, KindBinFilter, KindQuantFilter, KindDistVec,
		KindPPIndex, KindMIFile, KindNAPP, KindOMEDRANK, KindPermVPTree,
		KindVPTree, KindMPLSH, KindSWGraph, KindNNDescent, KindSeqScan,
	}
}

// ErrCorrupt is wrapped by every decoding error caused by malformed input
// (bad magic, short read, failed checksum, out-of-range length or id).
var ErrCorrupt = errors.New("codec: corrupt index file")

// ErrUnsupportedVersion is returned by NewReader for a well-formed file
// written by a different format version. It is distinct from ErrCorrupt so
// warm-start paths can fall back to rebuilding (the documented
// rebuild-not-migrate policy) while still failing loudly on real damage.
var ErrUnsupportedVersion = errors.New("codec: unsupported format version")

// ErrNotPersistable is returned by Save when an index cannot be serialized —
// today only indexes built over explicit pivot objects (rather than pivots
// sampled from the data set), whose pivots have no data ids to reference.
var ErrNotPersistable = errors.New("codec: index is not persistable")

// corruptf returns an ErrCorrupt-wrapping error with detail.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// Header is the decoded fixed prelude of a persisted index.
type Header struct {
	// Version is the format version the file was written with.
	Version uint16
	// Kind is the index-kind tag (one of the Kind constants).
	Kind string
	// Space is the report name of the distance space the index was built
	// under; loaders reject a mismatching space.
	Space string
	// N is the number of data points the index was built over; loaders
	// reject a data slice of any other length.
	N uint64
}

// maxTagLen bounds the kind and space strings in the header; real tags are
// all far shorter, and the cap keeps corrupt headers from allocating.
const maxTagLen = 256
