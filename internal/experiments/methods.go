package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/knngraph"
	"repro/internal/lsh"
	"repro/internal/space"
	"repro/internal/vptree"
)

// Every sweep's variants are paramVariant labels: the label printed in the
// Figure 4 output is literally the ParseParams string that reproduces the
// setting, via annbench or a serving request.

// vptreeSweep builds one VP-tree and traces its curve by varying the
// pruning stretch alpha (exact metric pruning at alpha = 1; larger = faster
// and less accurate). beta is the polynomial pruner exponent (2 for KL).
func vptreeSweep[T any](alphas []float64, beta float64, seed int64) sweep[T] {
	s := sweep[T]{
		method: "vptree",
		table2: true,
		build: func(sp space.Space[T], db []T) (index.Index[T], error) {
			return vptree.New(sp, db, vptree.Options{Beta: beta, Seed: seed})
		},
	}
	for _, a := range alphas {
		s.variants = append(s.variants, paramVariant[T](fmt.Sprintf("alpha=%g", a)))
	}
	return s
}

// graphVariants are the query-time (attempts, ef) settings tracing a
// proximity graph's recall/efficiency curve.
func graphVariants[T any](k int) []variant[T] {
	type cfg struct {
		att, ef int
	}
	var out []variant[T]
	for _, c := range []cfg{{1, k}, {2, 2 * k}, {4, 4 * k}, {8, 8 * k}} {
		out = append(out, paramVariant[T](fmt.Sprintf("att=%d,ef=%d", c.att, c.ef)))
	}
	return out
}

// swSweep is the Small World proximity graph (Malkov et al.).
func swSweep[T any](k int, seed int64) sweep[T] {
	return sweep[T]{
		method: "sw-graph",
		table2: true,
		build: func(sp space.Space[T], db []T) (index.Index[T], error) {
			return knngraph.NewSW(sp, db, knngraph.Options{NN: 10, InitAttempts: 2, Seed: seed})
		},
		variants: graphVariants[T](k),
	}
}

// nndescentSweep is the NN-descent proximity graph (Dong et al.), used by
// the paper for DNA and Wiki-8 with JS-divergence.
func nndescentSweep[T any](k int, seed int64) sweep[T] {
	return sweep[T]{
		method: "nndescent-graph",
		table2: false,
		build: func(sp space.Space[T], db []T) (index.Index[T], error) {
			return knngraph.NewNNDescent(sp, db, knngraph.Options{NN: 10, Seed: seed})
		},
		variants: graphVariants[T](k),
	}
}

// nappSweep traces NAPP's curve by varying the minimum number of shared
// pivots t (smaller = higher recall, more candidates).
func nappSweep[T any](n int, seed int64) sweep[T] {
	m := 512
	if m > n/4 {
		m = n / 4
	}
	if m < 8 {
		m = 8
	}
	s := sweep[T]{
		method: "napp",
		table2: true,
		build: func(sp space.Space[T], db []T) (index.Index[T], error) {
			return core.NewNAPP(sp, db, core.NAPPOptions{
				NumPivots: m, NumPivotIndex: 16, MinShared: 1, Seed: seed,
			})
		},
	}
	for _, t := range []int{4, 3, 2, 1} {
		s.variants = append(s.variants, paramVariant[T](fmt.Sprintf("t=%d", t)))
	}
	return s
}

// gammaVariants trace a filter's curve by the candidate fraction gamma.
func gammaVariants[T any]() []variant[T] {
	var out []variant[T]
	for _, g := range []float64{0.002, 0.01, 0.05, 0.2} {
		out = append(out, paramVariant[T](fmt.Sprintf("gamma=%g", g)))
	}
	return out
}

// bfSweep traces the brute-force permutation filter's curve by varying the
// candidate fraction gamma.
func bfSweep[T any](n int, seed int64) sweep[T] {
	m := 128
	if m > n {
		m = n
	}
	return sweep[T]{
		method: "brute-force-filt",
		table2: true,
		build: func(sp space.Space[T], db []T) (index.Index[T], error) {
			return core.NewBruteForceFilter(sp, db, core.BruteForceOptions{
				NumPivots: m, Seed: seed,
			})
		},
		variants: gammaVariants[T](),
	}
}

// binSweep is brute-force filtering over binarized permutations (twice the
// pivots of the full filter, per §3.2).
func binSweep[T any](n int, seed int64) sweep[T] {
	m := 256
	if m > n {
		m = n
	}
	return sweep[T]{
		method: "brute-force-filt-bin",
		table2: false,
		build: func(sp space.Space[T], db []T) (index.Index[T], error) {
			return core.NewBinFilter(sp, db, core.BinFilterOptions{
				NumPivots: m, Seed: seed,
			})
		},
		variants: gammaVariants[T](),
	}
}

// quantSweep is brute-force filtering over 4-bit quantized permutation
// prefixes: the PR 8 signature between full permutations and binarized
// sketches.
func quantSweep[T any](n int, seed int64) sweep[T] {
	m := 64
	if m > n {
		m = n
	}
	return sweep[T]{
		method: "brute-force-filt-quant",
		table2: false,
		build: func(sp space.Space[T], db []T) (index.Index[T], error) {
			return core.NewQuantFilter(sp, db, core.QuantFilterOptions{
				NumPivots: m, Seed: seed,
			})
		},
		variants: gammaVariants[T](),
	}
}

// mplshSweep is multi-probe LSH; L2 over dense vectors only, as in the
// paper. The curve is traced by the probe count T.
func mplshSweep(seed int64) sweep[[]float32] {
	s := sweep[[]float32]{
		method: "mplsh",
		table2: true,
		build: func(_ space.Space[[]float32], db [][]float32) (index.Index[[]float32], error) {
			return lsh.New(db, lsh.Options{Tables: 16, Hashes: 12, Seed: seed})
		},
	}
	for _, t := range []int{2, 10, 30, 80} {
		s.variants = append(s.variants, paramVariant[[]float32](fmt.Sprintf("T=%d", t)))
	}
	return s
}
