#!/bin/sh
# Smoke test of the sharded serving tier, end to end over real processes:
#
#   shardsplit --> 2x permserve (one per shard) --> permrouter
#                  1x permserve (unsharded baseline)
#
# Asserts the router's answer is byte-identical to the unsharded daemon's
# (single and batch), that killing a shard yields the documented fail-open
# "partial": true answer on one router and a 502 on a fail-closed one, and
# that the router shuts down gracefully. Run via `make shard-smoke`.
set -eu

BIN=${1:?usage: shard_smoke.sh path/to/bin-dir}
TMP=$(mktemp -d)
PIDS=""
trap 'for p in $PIDS; do kill "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT INT TERM

fail() {
    echo "shard-smoke: FAIL: $1" >&2
    for f in "$TMP"/*.log; do
        echo "--- $f ---" >&2
        cat "$f" >&2
    done
    exit 1
}

# wait_addr LOGFILE NAME -> echoes the bound address once logged.
wait_addr() {
    i=0
    while [ $i -lt 50 ]; do
        ADDR=$(sed -n 's#.*listening on http://\([0-9.:]*\).*#\1#p' "$1" | head -n1)
        [ -n "$ADDR" ] && { echo "$ADDR"; return 0; }
        sleep 0.2
        i=$((i + 1))
    done
    fail "$2 never started listening"
}

# 1. Split: a 2-shard DNA/VP-tree set plus an unsharded baseline over the
#    same corpus, same seeds.
"$BIN/shardsplit" -out "$TMP/idx" -set dna -dataset dna -n 1200 -shards 2 -method vptree >"$TMP/split.log" 2>&1 \
    || fail "shardsplit (sharded) failed"
"$BIN/shardsplit" -out "$TMP/base" -set dna -dataset dna -n 1200 -shards 1 -method vptree >>"$TMP/split.log" 2>&1 \
    || fail "shardsplit (baseline) failed"
[ -f "$TMP/idx/dna.shardset.json" ] || fail "no shard-set manifest written"

# 2. Boot the fleet on free ports.
"$BIN/permserve" -dir "$TMP/idx/shard0" -addr 127.0.0.1:0 >"$TMP/s0.log" 2>&1 &
PIDS="$PIDS $!"
"$BIN/permserve" -dir "$TMP/idx/shard1" -addr 127.0.0.1:0 >"$TMP/s1.log" 2>&1 &
S1_PID=$!
PIDS="$PIDS $S1_PID"
"$BIN/permserve" -dir "$TMP/base/shard0" -addr 127.0.0.1:0 >"$TMP/sb.log" 2>&1 &
PIDS="$PIDS $!"
S0=$(wait_addr "$TMP/s0.log" "shard 0")
S1=$(wait_addr "$TMP/s1.log" "shard 1")
SB=$(wait_addr "$TMP/sb.log" "baseline")

"$BIN/permrouter" -shards "http://$S0,http://$S1" -addr 127.0.0.1:0 >"$TMP/rt.log" 2>&1 &
RT_PID=$!
PIDS="$PIDS $RT_PID"
"$BIN/permrouter" -shards "http://$S0,http://$S1" -fail-open -addr 127.0.0.1:0 >"$TMP/rto.log" 2>&1 &
PIDS="$PIDS $!"
RT=$(wait_addr "$TMP/rt.log" "router (fail-closed)")
RTO=$(wait_addr "$TMP/rto.log" "router (fail-open)")

# 3. Readiness: router healthz proxies shard health.
HEALTH=$(curl -sf "http://$RT/healthz") || fail "router healthz failed"
[ "$HEALTH" = "ok" ] || fail "router healthz said '$HEALTH'"

# 4. Identity: router answer == unsharded answer, byte for byte (single and
#    batch), for a few queries.
for BODY in \
    '{"query": "ACGTACGTACGTACGT", "k": 5}' \
    '{"query": "TTTTGGGGCCCCAAAA", "k": 3}' \
    '{"queries": ["ACGTACGTAC", "GGGGGGGGGG"], "k": 4}'; do
    ROUTED=$(curl -sf -d "$BODY" "http://$RT/v1/indexes/dna/search") || fail "router search failed: $BODY"
    DIRECT=$(curl -sf -d "$BODY" "http://$SB/v1/indexes/dna/search") || fail "baseline search failed: $BODY"
    [ "$ROUTED" = "$DIRECT" ] || fail "router answer differs from unsharded baseline
  body:   $BODY
  router: $ROUTED
  direct: $DIRECT"
done
echo "$ROUTED" | grep -q '"id":' || fail "search returned no neighbors: $ROUTED"

# 5. Counters: the router's statusz tracks both shards.
STATUSZ=$(curl -sf "http://$RT/statusz") || fail "router statusz failed"
echo "$STATUSZ" | grep -q '"shard":1' || fail "statusz missing shard rows: $STATUSZ"

# 6. Degraded modes: kill shard 1, then the fail-open router answers
#    partial while the fail-closed one 502s (and neither hangs).
kill "$S1_PID" && wait "$S1_PID" 2>/dev/null || true
Q='{"query": "ACGTACGTACGTACGT", "k": 5}'
PARTIAL=$(curl -sf -d "$Q" "http://$RTO/v1/indexes/dna/search") || fail "fail-open search failed with a dead shard"
echo "$PARTIAL" | grep -q '"partial":true' || fail "fail-open answer not marked partial: $PARTIAL"
echo "$PARTIAL" | grep -q '"failed_shards":\[1\]' || fail "fail-open answer does not name the dead shard: $PARTIAL"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -d "$Q" "http://$RT/v1/indexes/dna/search")
[ "$CODE" = "502" ] || fail "fail-closed router answered $CODE with a dead shard, want 502"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$RT/healthz")
[ "$CODE" = "503" ] || fail "router healthz answered $CODE with a dead shard, want 503"

# 6b. Metrics: a few more failing queries push the dead shard's replica
#     past the ejection threshold, then the scraped exposition must parse
#     strictly and show the shard/replica families with the failure visible.
for i in 1 2 3; do
    curl -s -o /dev/null -d "$Q" "http://$RT/v1/indexes/dna/search" || true
done
curl -sf "http://$RT/metrics" >"$TMP/rt_metrics.txt" || fail "router metrics scrape failed"
"$BIN/metricscheck" -require permrouter_requests_total,permrouter_request_latency_seconds,permrouter_shard_latency_seconds,permrouter_shard_failovers_total,permrouter_replica_requests_total,permrouter_replica_failures_total,permrouter_replica_latency_seconds,permrouter_replica_ejections_total,permrouter_replica_readmissions_total "$TMP/rt_metrics.txt" \
    || fail "router metrics page failed metricscheck"
grep 'permrouter_replica_failures_total{shard="1",replica="0"}' "$TMP/rt_metrics.txt" | grep -qv ' 0$' \
    || fail "dead shard's replica failure counter did not move"
grep 'permrouter_replica_ejections_total{shard="1",replica="0"}' "$TMP/rt_metrics.txt" | grep -qv ' 0$' \
    || fail "dead shard's replica ejection was not counted"

# 7. Graceful shutdown.
kill "$RT_PID"
STATUS=0
wait "$RT_PID" || STATUS=$?
[ "$STATUS" -eq 0 ] || fail "router exited with status $STATUS on SIGTERM"
grep -q "permrouter: bye" "$TMP/rt.log" || fail "no graceful router shutdown on SIGTERM"

echo "shard-smoke: OK (router on $RT over shards $S0 + $S1, baseline $SB, fail-open on $RTO)"
