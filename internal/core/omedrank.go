package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/scratch"
	"repro/internal/space"
	"repro/internal/topk"
)

// OMEDRANKOptions configures NewOMEDRANK.
type OMEDRANKOptions struct {
	// NumVoters is the number of voting pivots h. Fagin et al. use few
	// voters (each ranking all points); default 8.
	NumVoters int
	// Quorum is the fraction of voter lists a candidate must appear in
	// before it is emitted (MEDRANK outputs on a majority). Default 0.5.
	Quorum float64
	// Gamma is the candidate fraction: the aggregation loop stops once
	// gamma*n candidates have crossed the quorum. Default 0.01.
	Gamma float64
	// Seed drives voter sampling.
	Seed int64
}

func (o *OMEDRANKOptions) defaults() {
	if o.NumVoters <= 0 {
		o.NumVoters = 8
	}
	if o.Quorum <= 0 || o.Quorum > 1 {
		o.Quorum = 0.5
	}
	if o.Gamma <= 0 {
		o.Gamma = 0.01
	}
}

// omedVoter is one voting pivot: every data point sorted by distance from
// the pivot.
type omedVoter struct {
	dists []float64 // ascending
	ids   []uint32  // co-sorted with dists
}

// OMEDRANK is the rank-aggregation method of Fagin, Kumar & Sivakumar
// (§2.1): each voting pivot ranks all data points by their distance from the
// pivot; at query time the algorithm walks every voter's list outward from
// the query's own position and outputs points as soon as they have been seen
// in a quorum of lists (the "median rank" heuristic for the NP-hard optimal
// aggregation). The paper benchmarks it as a baseline and finds NAPP more
// efficient; this implementation refines the aggregated candidates with the
// true distance so recall is comparable across methods.
type OMEDRANK[T any] struct {
	sp     space.Space[T]
	data   []T
	pivots []T
	// pivotIDs records each voter's position in the data slice, so the
	// index can be persisted by reference (see persist.go).
	pivotIDs []int32
	voters   []omedVoter
	opts     OMEDRANKOptions
	scratch  scratch.Pool[omedScratch]
}

// omedScratch is the per-query state of one OMEDRANK search. Quorum counts
// use the byte-packed Counters arena when the voter count fits a byte (the
// practical case — Fagin et al. use few voters — and one cache line per
// touched id); the persisted format admits up to 2^15 voters, so wider
// configurations fall back to the 32-bit Gains arena.
type omedScratch struct {
	counts     scratch.Counters
	wideCounts scratch.Gains
	lo         []int
	hi         []int
	qdist      []float64
	cands      []uint32
	queue      topk.Queue
}

// NewOMEDRANK samples voters and sorts the data by distance from each.
func NewOMEDRANK[T any](sp space.Space[T], data []T, opts OMEDRANKOptions) (*OMEDRANK[T], error) {
	opts.defaults()
	if len(data) == 0 {
		return nil, fmt.Errorf("core: empty data set")
	}
	if opts.NumVoters > len(data) {
		opts.NumVoters = len(data)
	}
	r := rand.New(rand.NewSource(opts.Seed))
	om := &OMEDRANK[T]{sp: sp, data: data, opts: opts}
	for _, vi := range r.Perm(len(data))[:opts.NumVoters] {
		om.pivots = append(om.pivots, data[vi])
		om.pivotIDs = append(om.pivotIDs, int32(vi))
	}
	om.voters = make([]omedVoter, opts.NumVoters)
	parallelFor(opts.NumVoters, func(v int) {
		voter := omedVoter{
			dists: make([]float64, len(data)),
			ids:   make([]uint32, len(data)),
		}
		for i, x := range data {
			voter.dists[i] = sp.Distance(x, om.pivots[v])
			voter.ids[i] = uint32(i)
		}
		sort.Sort(&voterSort{voter})
		om.voters[v] = voter
	})
	return om, nil
}

// voterSort co-sorts a voter's parallel arrays by (distance, id).
type voterSort struct{ v omedVoter }

func (s *voterSort) Len() int { return len(s.v.ids) }
func (s *voterSort) Less(i, j int) bool {
	if s.v.dists[i] != s.v.dists[j] {
		return s.v.dists[i] < s.v.dists[j]
	}
	return s.v.ids[i] < s.v.ids[j]
}
func (s *voterSort) Swap(i, j int) {
	s.v.dists[i], s.v.dists[j] = s.v.dists[j], s.v.dists[i]
	s.v.ids[i], s.v.ids[j] = s.v.ids[j], s.v.ids[i]
}

// Name implements index.Index.
func (om *OMEDRANK[T]) Name() string { return "omedrank" }

// Stats implements index.Sized.
func (om *OMEDRANK[T]) Stats() index.Stats {
	return index.Stats{
		Bytes:          int64(len(om.voters)) * int64(len(om.data)) * 12,
		BuildDistances: int64(len(om.voters)) * int64(len(om.data)),
	}
}

// Search implements index.Index.
func (om *OMEDRANK[T]) Search(query T, k int) []topk.Neighbor {
	return om.SearchAppend(nil, query, k)
}

// SearchAppend answers like Search but appends the results to dst; with a
// dst of sufficient capacity a warm call performs zero allocations.
func (om *OMEDRANK[T]) SearchAppend(dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	s := om.scratch.Get()
	defer om.scratch.Put(s)
	return om.search(s, nil, dst, query, k)
}

// NewSearcher implements index.SearcherProvider.
func (om *OMEDRANK[T]) NewSearcher() index.Searcher[T] {
	return &searcher[T, omedScratch]{fn: om.search}
}

// search is the scratch-threaded hot path shared by Search, SearchAppend
// and Searchers.
func (om *OMEDRANK[T]) search(s *omedScratch, tr *obs.QueryTrace, dst []topk.Neighbor, query T, k int) []topk.Neighbor {
	if k <= 0 {
		return dst
	}
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	n := len(om.data)
	h := len(om.voters)
	need := int(om.opts.Quorum*float64(h)) + 1
	if need > h {
		need = h
	}
	g := gammaCount(om.opts.Gamma, n, k)

	// Two cursors per voter, starting at the query's position in the
	// voter's sorted order and moving outward.
	lo := scratch.Grow(s.lo, h)
	hi := scratch.Grow(s.hi, h)
	s.lo, s.hi = lo, hi
	s.qdist = s.qdist[:0]
	for v, voter := range om.voters {
		s.qdist = append(s.qdist, om.sp.Distance(query, om.pivots[v]))
		pos := sort.SearchFloat64s(voter.dists, s.qdist[v])
		lo[v], hi[v] = pos-1, pos
	}
	qdist := s.qdist
	// An id is counted at most once per voter, so counts stay <= h and the
	// byte-packed arena is exact whenever h fits a byte.
	narrow := h <= 255
	if narrow {
		s.counts.Begin(n)
	} else {
		s.wideCounts.Begin(n)
	}
	cands := s.cands[:0]
	for len(cands) < g {
		progressed := false
		for v := range om.voters {
			voter := &om.voters[v]
			// Advance one step in the direction whose next entry
			// is closer in distance to the query's position.
			var pick int
			switch {
			case lo[v] < 0 && hi[v] >= n:
				continue
			case lo[v] < 0:
				pick = hi[v]
				hi[v]++
			case hi[v] >= n:
				pick = lo[v]
				lo[v]--
			default:
				// Both directions available: take the entry
				// whose pivot distance is nearer the query's.
				qd := qdist[v]
				if qd-voter.dists[lo[v]] <= voter.dists[hi[v]]-qd {
					pick = lo[v]
					lo[v]--
				} else {
					pick = hi[v]
					hi[v]++
				}
			}
			progressed = true
			id := voter.ids[pick]
			var total int
			if narrow {
				total = int(s.counts.Inc(id))
			} else {
				t32, _ := s.wideCounts.Add(id, 1)
				total = int(t32)
			}
			if total == need {
				cands = append(cands, id)
				if len(cands) >= g {
					break
				}
			}
		}
		if !progressed {
			break
		}
	}
	s.cands = cands
	if tr != nil {
		tr.FilterCandidates += int64(len(cands))
		obs.AddSince(&tr.FilterNs, t0)
	}
	return refineInto(om.sp, om.data, query, cands, k, &s.queue, dst, tr)
}
